"""Unit and behaviour tests for Incremental Meta-blocking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import TokenBlocking
from repro.datamodel.profiles import EntityProfile
from repro.datasets import paper_example_dataset
from repro.datasets.synthetic import DatasetScale, bibliographic_dataset
from repro.incremental import Candidate, IncrementalMetaBlocking


def _profile(identifier: str, text: str) -> EntityProfile:
    return EntityProfile.from_dict(identifier, {"text": text})


def _resolver(**kwargs) -> IncrementalMetaBlocking:
    defaults = dict(keys_for=TokenBlocking().keys_for, scheme="JS", k=3)
    defaults.update(kwargs)
    return IncrementalMetaBlocking(**defaults)


class TestConstruction:
    def test_rejects_ejs(self):
        with pytest.raises(ValueError, match="degrees"):
            _resolver(scheme="EJS")

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            _resolver(k=0)
        with pytest.raises(ValueError):
            _resolver(filtering_ratio=0.0)
        with pytest.raises(ValueError):
            _resolver(max_block_size=1)

    @pytest.mark.parametrize("scheme", ["ARCS", "CBS", "ECBS", "JS"])
    def test_supported_schemes(self, scheme):
        resolver = _resolver(scheme=scheme, k=1)
        # The unrelated profile enlarges |B| so ECBS's IDF factor is > 0.
        resolver.add(_profile("other", "unrelated words here"))
        resolver.add(_profile("a", "alpha beta"))
        (candidate,) = resolver.add(_profile("b", "alpha beta"))
        assert candidate.entity_id == 1
        assert candidate.weight > 0
        assert candidate.common_blocks == 2


class TestStreaming:
    def test_first_profile_has_no_candidates(self):
        resolver = _resolver()
        assert resolver.add(_profile("a", "alpha")) == []
        assert len(resolver) == 1

    def test_candidates_reference_earlier_profiles(self):
        resolver = _resolver()
        resolver.add(_profile("a", "alpha beta"))
        resolver.add(_profile("b", "gamma delta"))
        candidates = resolver.add(_profile("c", "alpha beta"))
        assert [c.entity_id for c in candidates] == [0]

    def test_common_blocks_counted(self):
        resolver = _resolver(filtering_ratio=1.0)
        resolver.add(_profile("a", "alpha beta gamma"))
        (candidate,) = resolver.add(_profile("b", "alpha beta zeta"))
        assert candidate.common_blocks == 2

    def test_top_k_cap(self):
        resolver = _resolver(k=2)
        for index in range(5):
            resolver.add(_profile(f"p{index}", "shared token"))
        candidates = resolver.add(_profile("new", "shared token"))
        assert len(candidates) == 2

    def test_candidates_sorted_by_weight(self):
        resolver = _resolver(filtering_ratio=1.0)
        resolver.add(_profile("close", "alpha beta gamma"))
        resolver.add(_profile("far", "alpha zzz yyy xxx www vvv"))
        candidates = resolver.add(_profile("new", "alpha beta gamma"))
        assert [c.entity_id for c in candidates] == [0, 1]
        assert candidates[0].weight > candidates[1].weight

    def test_profile_lookup(self):
        resolver = _resolver()
        resolver.add(_profile("a", "alpha"))
        assert resolver.profile(0).identifier == "a"


class TestFilteringAndPurging:
    def test_max_block_size_blocks_cooccurrence(self):
        resolver = _resolver(max_block_size=3, filtering_ratio=1.0)
        for index in range(5):
            resolver.add(_profile(f"p{index}", "common"))
        # "common" now has 5 members > 3: it yields no candidates.
        assert resolver.add(_profile("new", "common")) == []

    def test_filtering_keeps_rarest_blocks(self):
        resolver = _resolver(filtering_ratio=0.5, k=5)
        # Build a popular block and a rare one.
        for index in range(6):
            resolver.add(_profile(f"pop{index}", "popular"))
        resolver.add(_profile("rare1", "rareword"))
        # New profile has both keys; filtering (0.5 of 2 existing = 1 block)
        # keeps only the rare one.
        candidates = resolver.add(_profile("new", "popular rareword"))
        assert [c.entity_id for c in candidates] == [6]

    def test_fresh_keys_always_kept(self):
        resolver = _resolver(filtering_ratio=0.5)
        resolver.add(_profile("a", "seen"))
        resolver.add(_profile("b", "unseen seen"))
        # "unseen" was fresh for b; c can now match b through it.
        candidates = resolver.add(_profile("c", "unseen"))
        assert [c.entity_id for c in candidates] == [1]


class TestReciprocal:
    def test_reciprocal_prunes_one_sided_edges(self):
        # "hub" shares one token with the new profile but has k stronger
        # neighbours of its own, so the reciprocal test fails.
        plain = _resolver(k=1, filtering_ratio=1.0)
        reciprocal = _resolver(k=1, reciprocal=True, filtering_ratio=1.0)
        for resolver in (plain, reciprocal):
            resolver.add(_profile("twin1", "alpha beta gamma delta"))
            resolver.add(_profile("hub", "alpha beta gamma delta zeta"))
        assert [c.entity_id for c in plain.add(_profile("new", "zeta"))] == [1]
        assert reciprocal.add(_profile("new", "zeta")) == []

    def test_reciprocal_keeps_mutual_best(self):
        resolver = _resolver(k=2, reciprocal=True, filtering_ratio=1.0)
        resolver.add(_profile("a", "alpha beta gamma"))
        candidates = resolver.add(_profile("b", "alpha beta gamma"))
        assert [c.entity_id for c in candidates] == [0]

    def test_reciprocal_subset_of_plain(self):
        dataset = paper_example_dataset()
        plain = _resolver(k=2, filtering_ratio=1.0)
        reciprocal = _resolver(k=2, reciprocal=True, filtering_ratio=1.0)
        for _, profile in dataset.iter_profiles():
            plain_candidates = {c.entity_id for c in plain.add(profile)}
            reciprocal_candidates = {
                c.entity_id for c in reciprocal.add(profile)
            }
            assert reciprocal_candidates <= plain_candidates


class TestCleanClean:
    def test_same_source_pairs_excluded(self):
        resolver = _resolver(clean_clean=True, filtering_ratio=1.0)
        resolver.add(_profile("a1", "alpha beta"), source=0)
        resolver.add(_profile("a2", "alpha beta"), source=0)
        candidates = resolver.add(_profile("b1", "alpha beta"), source=1)
        assert {c.entity_id for c in candidates} == {0, 1}
        same_side = resolver.add(_profile("a3", "alpha beta"), source=0)
        assert {c.entity_id for c in same_side} == {2}

    def test_source_validated(self):
        resolver = _resolver(clean_clean=True)
        with pytest.raises(ValueError, match="source"):
            resolver.add(_profile("x", "alpha"), source=2)


class TestStreamQuality:
    def test_recovers_most_duplicates_on_synthetic_stream(self):
        dataset = bibliographic_dataset(
            DatasetScale(size1=80, size2=200, num_duplicates=60), seed=17
        )
        resolver = _resolver(
            k=5, clean_clean=True, max_block_size=60, filtering_ratio=0.8
        )
        matches = set()
        for entity_id, profile in dataset.iter_profiles():
            source = dataset.source_of(entity_id)
            for candidate in resolver.add(profile, source=source):
                pair = tuple(sorted((entity_id, candidate.entity_id)))
                matches.add(pair)
        detected = dataset.ground_truth.detected_in(matches)
        recall = len(detected) / len(dataset.ground_truth)
        precision = len(detected) / len(matches)
        assert recall > 0.8
        # Top-k candidates are vastly better than random pairs: a random
        # cross-source pair is a duplicate with probability ~0.4%.
        assert precision > 0.03

    def test_deterministic(self):
        dataset = paper_example_dataset()

        def run():
            resolver = _resolver(k=2)
            out = []
            for _, profile in dataset.iter_profiles():
                out.append(tuple(c.entity_id for c in resolver.add(profile)))
            return out

        assert run() == run()

    def test_candidate_is_frozen(self):
        candidate = Candidate(entity_id=1, weight=0.5, common_blocks=2)
        with pytest.raises(AttributeError):
            candidate.weight = 0.9  # type: ignore[misc]


class TestBatchEquivalence:
    """Post-stream exports match the batch pipeline on the same collection.

    The acceptance contract of the delta-index rewrite: after any sequence
    of upserts (with or without compactions), ``candidate_pairs`` retains
    exactly the pairs — in the same order — that ``meta_block`` retains on
    the materialised collection with the same scheme and explicit ``k``.
    Schemes with integer co-occurrence statistics (JS, CBS) make the match
    bit-exact regardless of block order.
    """

    @staticmethod
    def _stream(dataset, scheme, execution=None, compact_every=None):
        resolver = IncrementalMetaBlocking(
            TokenBlocking().keys_for,
            scheme=scheme,
            k=2,
            filtering_ratio=1.0,
            clean_clean=dataset.is_clean_clean,
            execution=execution,
        )
        for entity_id, profile in dataset.iter_profiles():
            source = (
                dataset.source_of(entity_id)
                if dataset.is_clean_clean
                else 0
            )
            resolver.add(profile, source=source)
            if compact_every and (entity_id + 1) % compact_every == 0:
                resolver.compact()
        return resolver

    @staticmethod
    def _batch(resolver, scheme, algorithm, execution=None):
        from repro.core.pipeline import meta_block

        return meta_block(
            resolver.to_block_collection(),
            scheme=scheme,
            algorithm=algorithm,
            block_filtering_ratio=None,
            backend="vectorized",
            execution=execution,
        )

    @pytest.mark.parametrize("scheme", ["JS", "CBS"])
    @pytest.mark.parametrize("algorithm", ["CNP", "ReCNP"])
    def test_serial_equivalence(self, scheme, algorithm):
        from repro.core.pruning import (
            CardinalityNodePruning,
            RedefinedCardinalityNodePruning,
        )

        dataset = bibliographic_dataset(
            DatasetScale(size1=30, size2=60, num_duplicates=20), seed=11
        )
        resolver = self._stream(dataset, scheme, compact_every=25)
        batch_algo = (
            CardinalityNodePruning(2)
            if algorithm == "CNP"
            else RedefinedCardinalityNodePruning(2)
        )
        streaming = resolver.candidate_pairs(algorithm)
        batch = self._batch(resolver, scheme, batch_algo)
        assert list(streaming.pairs) == list(batch.comparisons.pairs)

    @pytest.mark.parametrize("algorithm", ["CNP", "ReCNP"])
    def test_threads_backend_equivalence(self, algorithm):
        """The parallel (threads) batch run agrees with the streaming export
        after compaction — the delta is merged into plain CSR arrays, so the
        chunked executor sees an ordinary index."""
        from repro.core.execution import ExecutionConfig
        from repro.core.pruning import (
            CardinalityNodePruning,
            RedefinedCardinalityNodePruning,
        )

        dataset = bibliographic_dataset(
            DatasetScale(size1=30, size2=60, num_duplicates=20), seed=12
        )
        resolver = self._stream(dataset, "JS")
        resolver.compact()
        batch_algo = (
            CardinalityNodePruning(2)
            if algorithm == "CNP"
            else RedefinedCardinalityNodePruning(2)
        )
        streaming = resolver.candidate_pairs(algorithm)
        batch = self._batch(
            resolver,
            "JS",
            batch_algo,
            execution=ExecutionConfig(parallel=2, parallel_backend="threads"),
        )
        assert sorted(streaming.pairs) == sorted(batch.comparisons.pairs)

    def test_dirty_repruning_matches_full_recompute(self):
        """Exports after further upserts (dirty-subset re-pruning) equal a
        from-scratch resolver's export over the same profiles."""
        dataset = bibliographic_dataset(
            DatasetScale(size1=20, size2=40, num_duplicates=15), seed=13
        )
        profiles = list(dataset.iter_profiles())
        warm = IncrementalMetaBlocking(
            TokenBlocking().keys_for, scheme="JS", k=2, filtering_ratio=1.0,
            clean_clean=True,
        )
        for entity_id, profile in profiles[: len(profiles) // 2]:
            warm.add(profile, source=dataset.source_of(entity_id))
        warm.candidate_pairs("CNP")  # populate criteria, clear dirty set
        for entity_id, profile in profiles[len(profiles) // 2 :]:
            warm.add(profile, source=dataset.source_of(entity_id))

        cold = IncrementalMetaBlocking(
            TokenBlocking().keys_for, scheme="JS", k=2, filtering_ratio=1.0,
            clean_clean=True,
        )
        for entity_id, profile in profiles:
            cold.add(profile, source=dataset.source_of(entity_id))

        assert list(warm.candidate_pairs("CNP").pairs) == list(
            cold.candidate_pairs("CNP").pairs
        )
        assert list(warm.candidate_pairs("ReWNP").pairs) == list(
            cold.candidate_pairs("ReWNP").pairs
        )

    def test_compaction_preserves_resolver_state(self):
        dataset = bibliographic_dataset(
            DatasetScale(size1=15, size2=30, num_duplicates=10), seed=14
        )
        resolver = self._stream(dataset, "JS")
        before = list(resolver.candidate_pairs("CNP").pairs)
        resolver.compact()
        assert resolver.compactions == 1
        assert list(resolver.candidate_pairs("CNP").pairs) == before

    def test_auto_compaction_triggers(self):
        import repro.incremental.resolver as resolver_module

        dataset = bibliographic_dataset(
            DatasetScale(size1=20, size2=40, num_duplicates=10), seed=15
        )
        resolver = IncrementalMetaBlocking(
            TokenBlocking().keys_for,
            scheme="JS",
            compact_ratio=0.5,
            clean_clean=True,
        )
        threshold = resolver_module.MIN_COMPACT_ASSIGNMENTS
        for entity_id, profile in dataset.iter_profiles():
            resolver.add(profile, source=dataset.source_of(entity_id))
            if resolver.compactions:
                break
        assert resolver.compactions >= 1
        assert resolver.index.delta_assignments < threshold


class TestMicroBatching:
    """``add_batch`` and the ``submit``/``flush`` coalescing buffer."""

    def test_empty_batch(self):
        resolver = _resolver()
        assert resolver.add_batch([]) == []
        assert len(resolver) == 0

    def test_singleton_batch_matches_add(self):
        batched = _resolver()
        (only,) = batched.add_batch([_profile("a", "alpha beta")])
        plain = _resolver()
        assert only == plain.add(_profile("a", "alpha beta"))

    def test_batch_candidates_reference_earlier_entities_only(self):
        resolver = _resolver()
        results = resolver.add_batch(
            [
                _profile("a", "alpha beta"),
                _profile("b", "alpha beta"),
                _profile("c", "alpha beta"),
            ]
        )
        assert [[c.entity_id for c in batch] for batch in results] == [
            [], [0], [0, 1],
        ]

    def test_sources_broadcast_and_validation(self):
        resolver = _resolver(clean_clean=True)
        results = resolver.add_batch(
            [_profile("a", "alpha"), _profile("b", "alpha")], sources=1
        )
        assert results == [[], []]  # same side: no cross-source candidates
        with pytest.raises(ValueError, match="sources"):
            resolver.add_batch([_profile("c", "x")], sources=[0, 1])
        with pytest.raises(ValueError, match="source must be 0 or 1"):
            resolver.add_batch([_profile("c", "x")], sources=[2])

    def test_submit_buffers_until_capacity(self):
        resolver = _resolver(batch_size=3)
        assert resolver.submit(_profile("a", "alpha beta")) is None
        assert resolver.submit(_profile("b", "alpha beta")) is None
        assert resolver.pending == 2
        assert len(resolver) == 0
        assert "pending=2" in repr(resolver)
        flushed = resolver.submit(_profile("c", "alpha beta"))
        assert [[c.entity_id for c in batch] for batch in flushed] == [
            [], [0], [0, 1],
        ]
        assert resolver.pending == 0
        assert len(resolver) == 3

    def test_default_batch_size_commits_immediately(self):
        resolver = _resolver()
        assert resolver.submit(_profile("a", "alpha")) == [[]]
        assert resolver.pending == 0

    def test_flush_returns_pending_candidates(self):
        resolver = _resolver(batch_size=10)
        resolver.submit(_profile("a", "alpha beta"))
        resolver.submit(_profile("b", "alpha beta"))
        flushed = resolver.flush()
        assert [[c.entity_id for c in batch] for batch in flushed] == [
            [], [0],
        ]
        assert resolver.flush() == []

    def test_candidate_pairs_flushes_buffer(self):
        resolver = _resolver(batch_size=10)
        resolver.submit(_profile("a", "alpha beta"))
        resolver.submit(_profile("b", "alpha beta"))
        pairs = list(resolver.candidate_pairs("CNP").pairs)
        assert resolver.pending == 0
        assert len(resolver) == 2
        # Original CNP keeps the directed repeat: both nodes retain the edge.
        assert pairs == [(0, 1), (0, 1)]

    def test_compact_flushes_buffer(self):
        resolver = _resolver(batch_size=10)
        resolver.submit(_profile("a", "alpha beta"))
        resolver.compact()
        assert resolver.pending == 0
        assert len(resolver) == 1

    def test_batch_size_validation_and_seeding(self):
        from repro.core.execution import ExecutionConfig

        with pytest.raises(ValueError, match="batch_size"):
            _resolver(batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            ExecutionConfig(batch_size=0)
        seeded = _resolver(execution=ExecutionConfig(batch_size=7))
        assert seeded.batch_size == 7
        explicit = _resolver(
            execution=ExecutionConfig(batch_size=7), batch_size=2
        )
        assert explicit.batch_size == 2

    def test_one_epoch_bump_per_batch(self):
        resolver = _resolver()
        before = resolver.epoch
        resolver.add_batch(
            [_profile(str(i), "alpha beta gamma") for i in range(8)]
        )
        assert resolver.epoch == before + 1

    def test_profile_phases_accumulate(self):
        resolver = _resolver(profile_phases=True, batch_size=4)
        for i in range(8):
            resolver.submit(_profile(str(i), "alpha beta gamma delta"))
        assert all(
            seconds > 0 for seconds in resolver.phase_seconds.values()
        ), resolver.phase_seconds

    def test_threads_refresh_matches_serial_export(self, monkeypatch):
        import repro.incremental.resolver as resolver_module
        from repro.core.execution import ExecutionConfig

        monkeypatch.setattr(resolver_module, "NODE_CRITERIA_BATCH", 4)
        dataset = bibliographic_dataset(
            DatasetScale(size1=30, size2=60, num_duplicates=20), seed=21
        )
        serial = _resolver(filtering_ratio=1.0, clean_clean=True)
        threaded = _resolver(
            filtering_ratio=1.0,
            clean_clean=True,
            batch_size=16,
            execution=ExecutionConfig(parallel=2, parallel_backend="threads"),
        )
        for entity_id, profile in dataset.iter_profiles():
            source = dataset.source_of(entity_id)
            serial.add(profile, source=source)
            threaded.submit(profile, source=source)
        for algorithm in ("CNP", "WNP", "ReCNP", "ReWNP"):
            assert list(threaded.candidate_pairs(algorithm).pairs) == list(
                serial.candidate_pairs(algorithm).pairs
            ), algorithm


class TestMicroBatchProperty:
    """Property: any batch split of any stream equals the sequential run.

    For the insertion-count schemes (CBS, JS) ``add_batch`` must be
    bit-identical to per-profile ``add`` — per-upsert candidate lists
    (order included), the final collection, and every export — no matter
    how the stream is cut into micro-batches.
    """

    @staticmethod
    def _keys_for(profile):
        return profile  # profiles are plain token lists

    @classmethod
    def _build(cls, scheme, clean_clean, execution=None):
        return IncrementalMetaBlocking(
            cls._keys_for,
            scheme=scheme,
            k=2,
            filtering_ratio=0.6,
            max_block_size=4,
            clean_clean=clean_clean,
            execution=execution,
        )

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    @pytest.mark.parametrize("scheme", ["CBS", "JS"])
    @pytest.mark.parametrize("threads", [False, True])
    def test_batched_equals_sequential(self, data, scheme, threads):
        from repro.core.execution import ExecutionConfig

        vocabulary = [f"t{i}" for i in range(8)]
        profiles = data.draw(
            st.lists(
                st.lists(st.sampled_from(vocabulary), min_size=1, max_size=4),
                min_size=2,
                max_size=20,
            )
        )
        clean_clean = data.draw(st.booleans())
        sources = [
            data.draw(st.integers(0, 1)) if clean_clean else 0
            for _ in profiles
        ]
        execution = (
            ExecutionConfig(parallel=2, parallel_backend="threads")
            if threads
            else None
        )

        sequential = self._build(scheme, clean_clean)
        expected = [
            sequential.add(profile, source)
            for profile, source in zip(profiles, sources)
        ]

        batched = self._build(scheme, clean_clean, execution=execution)
        actual = []
        position = 0
        while position < len(profiles):
            size = data.draw(
                st.integers(1, len(profiles) - position), label="batch"
            )
            actual.extend(
                batched.add_batch(
                    profiles[position : position + size],
                    sources[position : position + size],
                )
            )
            position += size

        assert actual == expected
        sequential_blocks = sequential.to_block_collection()
        batched_blocks = batched.to_block_collection()
        assert [
            (block.key, block.entities1, block.entities2)
            for block in sequential_blocks
        ] == [
            (block.key, block.entities1, block.entities2)
            for block in batched_blocks
        ]
        for algorithm in ("CNP", "WNP", "ReCNP", "RcWNP"):
            assert list(batched.candidate_pairs(algorithm).pairs) == list(
                sequential.candidate_pairs(algorithm).pairs
            ), algorithm


class TestQueryAndStats:
    """The read-only ``query``/``stats`` surface added for the daemon."""

    def test_query_matches_last_insert_view(self):
        resolver = _resolver()
        resolver.add(_profile("a", "alpha beta"))
        resolver.add(_profile("b", "alpha beta"))
        candidates = resolver.query(1)
        assert [c.entity_id for c in candidates] == [0]
        assert candidates == resolver.query(1)  # read-only: stable

    def test_query_respects_k(self):
        resolver = _resolver(k=3)
        for i in range(5):
            resolver.add(_profile(str(i), "alpha beta"))
        assert len(resolver.query(4)) == 3
        assert len(resolver.query(4, k=1)) == 1
        assert len(resolver.query(4, k=10)) == 4

    def test_query_validation(self):
        resolver = _resolver()
        resolver.add(_profile("a", "alpha"))
        with pytest.raises(KeyError, match="unknown entity"):
            resolver.query(5)
        with pytest.raises(ValueError, match="k must be positive"):
            resolver.query(0, k=0)

    def test_query_flushes_pending_submits(self):
        resolver = _resolver(batch_size=10)
        resolver.submit(_profile("a", "alpha beta"))
        resolver.submit(_profile("b", "alpha beta"))
        assert [c.entity_id for c in resolver.query(1)] == [0]
        assert resolver.pending == 0

    def test_stats_snapshot(self):
        import json

        from repro.core.execution import ExecutionConfig

        execution = ExecutionConfig(parallel=2, parallel_backend="threads")
        resolver = _resolver(batch_size=4, execution=execution)
        resolver.submit(_profile("a", "alpha beta"))
        stats = resolver.stats()
        assert stats["profiles"] == 0
        assert stats["pending"] == 1
        assert stats["scheme"] == "JS"
        assert stats["batch_size"] == 4
        assert ExecutionConfig.from_dict(stats["execution"]) == execution
        assert json.dumps(stats)  # JSON-serialisable end to end


class TestCompactCounting:
    """One explicit ``compact()`` is one compaction, even when its flush
    crosses the auto-compaction threshold (it used to count twice)."""

    def test_explicit_compact_counts_once(self, monkeypatch):
        import repro.incremental.resolver as resolver_module

        monkeypatch.setattr(resolver_module, "MIN_COMPACT_ASSIGNMENTS", 1)
        resolver = _resolver(batch_size=50, compact_ratio=0.01)
        for i in range(10):
            resolver.submit(_profile(str(i), "alpha beta gamma"))
        assert resolver.pending == 10
        resolver.compact()
        # The flush inside compact() crossed compact_ratio, but it folds
        # into this compaction instead of triggering a second one.
        assert resolver.compactions == 1
        assert resolver.index.delta_assignments == 0
        assert len(resolver) == 10

    def test_auto_compaction_counts_per_flushed_batch(self, monkeypatch):
        import repro.incremental.resolver as resolver_module

        monkeypatch.setattr(resolver_module, "MIN_COMPACT_ASSIGNMENTS", 1)
        resolver = _resolver(batch_size=5, compact_ratio=0.01)
        for i in range(10):
            resolver.submit(_profile(str(i), "alpha beta gamma"))
        # Ten upserts = two flushed batches = two auto-compactions, not
        # one per raw upsert.
        assert resolver.compactions == 2
