"""Unit tests for the wall-clock timer."""

import time

import pytest

from repro.utils.timer import Timer


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running

    def test_stop_returns_elapsed(self):
        timer = Timer()
        timer.start()
        elapsed = timer.stop()
        assert elapsed == timer.elapsed >= 0.0

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= 0.005
        assert timer.elapsed != first or timer.elapsed > 0
