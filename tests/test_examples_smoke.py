"""Smoke tests: the fast example scripts must run end-to-end.

The heavier examples (full synthetic datasets) are exercised by the
benchmark suite's machinery; here we run the quick ones in-process so a
public-API regression that breaks an example fails the unit tests too.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "custom_data.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"{script} missing"
    # Run as __main__ so the `if __name__ == "__main__":` guard fires.
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_shows_paper_figures(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Token Blocking (Figure 1b)" in out
    assert "13 comparisons" in out
    assert "RcWNP" in out


def test_all_examples_exist_and_are_documented():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        text = script.read_text(encoding="utf-8")
        assert text.startswith("#!/usr/bin/env python3"), script.name
        assert '"""' in text, f"{script.name} lacks a docstring"
        assert "Run with:" in text, f"{script.name} lacks run instructions"
