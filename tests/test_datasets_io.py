"""Unit tests for dataset serialization."""

import json

import pytest

from repro.datasets.examples import paper_example_dataset
from repro.datasets.io import (
    load_clean_clean_json,
    load_dirty_json,
    read_profiles_csv,
    save_dataset_json,
)
from repro.datasets.synthetic import DatasetScale, bibliographic_dataset


class TestJsonRoundTrip:
    def test_dirty(self, tmp_path):
        dataset = paper_example_dataset()
        path = tmp_path / "dirty.json"
        save_dataset_json(dataset, path)
        loaded = load_dirty_json(path)
        assert loaded.name == dataset.name
        assert loaded.num_entities == dataset.num_entities
        assert loaded.ground_truth.pairs == dataset.ground_truth.pairs
        assert [p.attributes for p in loaded.collection] == [
            p.attributes for p in dataset.collection
        ]

    def test_clean_clean(self, tmp_path):
        dataset = bibliographic_dataset(
            DatasetScale(size1=10, size2=20, num_duplicates=8), seed=2
        )
        path = tmp_path / "cc.json"
        save_dataset_json(dataset, path)
        loaded = load_clean_clean_json(path)
        assert loaded.split == dataset.split
        assert loaded.ground_truth.pairs == dataset.ground_truth.pairs
        assert [p.identifier for p in loaded.collection2] == [
            p.identifier for p in dataset.collection2
        ]

    def test_task_mismatch_rejected(self, tmp_path):
        path = tmp_path / "dirty.json"
        save_dataset_json(paper_example_dataset(), path)
        with pytest.raises(ValueError, match="task is"):
            load_clean_clean_json(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = {"format_version": 99, "task": "dirty"}
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format_version"):
            load_dirty_json(path)


class TestCsvIngestion:
    def test_basic(self, tmp_path):
        path = tmp_path / "records.csv"
        path.write_text("id,title,year\nr1,Deep Learning,2016\nr2,Graphs,\n")
        collection = read_profiles_csv(path, id_column="id", name="demo")
        assert len(collection) == 2
        assert collection[0].values("title") == ["Deep Learning"]
        # Empty cells are skipped.
        assert collection[1].attribute_names == {"title"}

    def test_missing_id_column(self, tmp_path):
        path = tmp_path / "records.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="id column"):
            read_profiles_csv(path, id_column="id")

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "records.tsv"
        path.write_text("id\tv\nx\thello world\n")
        collection = read_profiles_csv(path, id_column="id", delimiter="\t")
        assert collection[0].values("v") == ["hello world"]
