"""Tests for the parallel node-partitioned meta-blocking executor."""

from __future__ import annotations

import pytest

from repro.core.edge_weighting import (
    OptimizedEdgeWeighting,
    OriginalEdgeWeighting,
)
from repro.core.parallel import (
    PARALLEL_ALGORITHMS,
    ParallelMetaBlockingExecutor,
    ParallelNodeCentricExecutor,
    parallel_prune,
    partition_ranges,
    resolve_workers,
    supports_parallel,
)
from repro.core.pipeline import meta_block
from repro.core.pruning import PRUNING_ALGORITHMS, PruningAlgorithm
from repro.core.vectorized import VectorizedEdgeWeighting
from repro.datamodel.blocks import Block, BlockCollection

ALL_ALGORITHMS = sorted(PARALLEL_ALGORITHMS)


class TestPartitioning:
    def test_ranges_cover_exactly(self):
        for count in (0, 1, 5, 16, 17, 100):
            for chunks in (1, 3, 7, 200):
                ranges = partition_ranges(count, chunks)
                covered = [i for start, stop in ranges for i in range(start, stop)]
                assert covered == list(range(count))

    def test_ranges_are_near_even(self):
        ranges = partition_ranges(10, 3)
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_graph_yields_no_ranges(self):
        assert partition_ranges(0, 4) == []

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1


class TestSupports:
    def test_all_registry_algorithms_supported(self):
        for name in ALL_ALGORITHMS:
            assert supports_parallel(PRUNING_ALGORITHMS[name]())

    def test_registry_matches_parallel_acronyms(self):
        assert PARALLEL_ALGORITHMS == set(PRUNING_ALGORITHMS)

    def test_prune_rejects_unknown_algorithm(self, example_blocks):
        class CustomPruning(PruningAlgorithm):
            def prune(self, weighting):
                raise NotImplementedError

        assert not supports_parallel(CustomPruning())
        executor = ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=1
        )
        with pytest.raises(ValueError, match="not node-partitionable"):
            executor.prune(CustomPruning())

    def test_node_centric_alias_kept(self):
        assert ParallelNodeCentricExecutor is ParallelMetaBlockingExecutor


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
class TestMatchesSerial:
    """The executor retains the exact same comparisons as the serial code."""

    def test_paper_example_multiprocess(self, example_blocks, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2, chunks=3
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_dirty_synthetic(self, tiny_dirty_blocks, name):
        blocks = tiny_dirty_blocks.sorted_by_cardinality()
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(blocks, "JS"), workers=2, chunks=7
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_clean_clean_synthetic(self, small_clean_blocks, name):
        blocks = small_clean_blocks.sorted_by_cardinality()
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(blocks, "JS"), workers=2, chunks=5
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_vectorized_backend(self, example_blocks, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(VectorizedEdgeWeighting(example_blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            VectorizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_original_backend_same_set(self, example_blocks, name):
        # The original backend's per-node neighbourhood ordering differs from
        # its global iter_edges() ordering, so compare as sets of pairs.
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OriginalEdgeWeighting(example_blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OriginalEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert sorted(executor.prune(algorithm).pairs) == sorted(serial.pairs)

    def test_ejs_degrees_shared_with_workers(self, example_blocks, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "EJS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "EJS"), workers=2
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_in_process_chunked_path(self, example_blocks, name):
        # workers=1 exercises the same chunked merge without a pool.
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=1, chunks=4
        )
        assert executor.prune(algorithm).pairs == serial.pairs


class TestPhase1Helpers:
    def test_nearest_neighbor_sets_match_serial(self, example_blocks):
        from repro.core.pruning.redefined import nearest_neighbor_sets

        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert executor.nearest_neighbor_sets(2) == nearest_neighbor_sets(
            weighting, 2
        )

    def test_neighborhood_thresholds_match_serial(self, example_blocks):
        from repro.core.pruning.redefined import neighborhood_thresholds

        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        parallel = executor.neighborhood_thresholds()
        serial = neighborhood_thresholds(weighting)
        assert parallel.keys() == serial.keys()
        for entity, threshold in serial.items():
            assert parallel[entity] == pytest.approx(threshold, abs=1e-12)

    def test_map_neighborhoods_matches_serial(self, example_blocks):
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert executor.map_neighborhoods() == dict(
            weighting.iter_neighborhoods()
        )


class TestConvenience:
    def test_parallel_prune_supported(self, example_blocks):
        algorithm = PRUNING_ALGORITHMS["ReWNP"]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        result = parallel_prune(
            OptimizedEdgeWeighting(example_blocks, "JS"), algorithm, workers=2
        )
        assert result.pairs == serial.pairs

    def test_parallel_prune_edge_centric(self, example_blocks):
        for name in ("CEP", "WEP"):
            algorithm = PRUNING_ALGORITHMS[name]()
            serial = algorithm.prune(
                OptimizedEdgeWeighting(example_blocks, "JS")
            )
            result = parallel_prune(
                OptimizedEdgeWeighting(example_blocks, "JS"),
                algorithm,
                workers=2,
            )
            assert result.pairs == serial.pairs

    def test_parallel_prune_falls_back_for_unknown(self, example_blocks):
        class CustomPruning(PruningAlgorithm):
            def prune(self, weighting):
                return PRUNING_ALGORITHMS["WEP"]().prune(weighting)

        serial = PRUNING_ALGORITHMS["WEP"]().prune(
            OptimizedEdgeWeighting(example_blocks, "JS")
        )
        result = parallel_prune(
            OptimizedEdgeWeighting(example_blocks, "JS"),
            CustomPruning(),
            workers=2,
        )
        assert result.pairs == serial.pairs

    def test_empty_collection(self):
        blocks = BlockCollection([], 0)
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(blocks, "JS"), workers=2
        )
        assert executor.prune(PRUNING_ALGORITHMS["ReWNP"]()).pairs == []

    def test_singleton_graph(self):
        blocks = BlockCollection([Block("a", (0, 1))], num_entities=2)
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(blocks, "JS"), workers=2, chunks=8
        )
        serial = PRUNING_ALGORITHMS["ReWNP"]().prune(
            OptimizedEdgeWeighting(blocks, "JS")
        )
        assert executor.prune(PRUNING_ALGORITHMS["ReWNP"]()).pairs == serial.pairs


class TestPipelineIntegration:
    def test_meta_block_parallel_matches_serial(self, small_dirty_blocks):
        serial = meta_block(small_dirty_blocks, scheme="JS", algorithm="RcWNP")
        parallel = meta_block(
            small_dirty_blocks, scheme="JS", algorithm="RcWNP", parallel=2
        )
        assert parallel.comparisons.pairs == serial.comparisons.pairs

    def test_meta_block_parallel_edge_centric_matches_serial(
        self, small_dirty_blocks
    ):
        for algorithm in ("CEP", "WEP"):
            serial = meta_block(
                small_dirty_blocks, scheme="JS", algorithm=algorithm
            )
            parallel = meta_block(
                small_dirty_blocks, scheme="JS", algorithm=algorithm, parallel=2
            )
            assert parallel.comparisons.pairs == serial.comparisons.pairs

    def test_meta_block_records_parallel_metadata(self, small_dirty_blocks):
        serial = meta_block(small_dirty_blocks, scheme="JS", algorithm="WEP")
        assert serial.effective_workers == 1
        assert serial.parallel_backend == "serial"
        parallel = meta_block(
            small_dirty_blocks, scheme="JS", algorithm="WEP", parallel=2
        )
        assert parallel.effective_workers == 2
        assert parallel.parallel_backend in ("fork", "in-process")

    def test_meta_block_warns_without_fork(
        self, small_dirty_blocks, monkeypatch
    ):
        import repro.core.pipeline as pipeline_module

        monkeypatch.setattr(pipeline_module, "fork_available", lambda: False)
        serial = meta_block(small_dirty_blocks, scheme="JS", algorithm="RcWNP")
        with pytest.warns(RuntimeWarning, match="fork"):
            result = meta_block(
                small_dirty_blocks, scheme="JS", algorithm="RcWNP", parallel=2
            )
        assert result.effective_workers == 1
        assert result.parallel_backend == "serial"
        assert result.comparisons.pairs == serial.comparisons.pairs

    def test_meta_block_warns_for_unsupported_algorithm(
        self, small_dirty_blocks
    ):
        class CustomPruning(PruningAlgorithm):
            name = "custom"

            def prune(self, weighting):
                return PRUNING_ALGORITHMS["WEP"]().prune(weighting)

        with pytest.warns(RuntimeWarning, match="does not support parallel"):
            result = meta_block(
                small_dirty_blocks,
                scheme="JS",
                algorithm=CustomPruning(),
                parallel=2,
            )
        assert result.effective_workers == 1
        assert result.parallel_backend == "serial"

    def test_workflow_round_trips_parallel(self):
        from repro import TokenBlocking
        from repro.core.pipeline import MetaBlockingWorkflow

        workflow = MetaBlockingWorkflow(
            TokenBlocking(), algorithm="RcWNP", parallel=2, chunk_size=1024
        )
        config = workflow.to_config()
        assert config["parallel"] == 2
        assert config["chunk_size"] == 1024
        restored = MetaBlockingWorkflow.from_config(config)
        assert restored.parallel == 2
        assert restored.chunk_size == 1024
