"""Tests for the parallel node-partitioned meta-blocking executor."""

from __future__ import annotations

import gc
import warnings

import pytest

from repro.core.edge_weighting import (
    OptimizedEdgeWeighting,
    OriginalEdgeWeighting,
)
from repro.core.parallel import (
    PARALLEL_ALGORITHMS,
    PARALLEL_BACKENDS,
    ParallelMetaBlockingExecutor,
    ParallelNodeCentricExecutor,
    fork_available,
    parallel_prune,
    partition_ranges,
    resolve_workers,
    spawn_available,
    supports_parallel,
)
from repro.core.pipeline import meta_block
from repro.core.pruning import PRUNING_ALGORITHMS, PruningAlgorithm
from repro.core.vectorized import VectorizedEdgeWeighting
from repro.datamodel.blocks import Block, BlockCollection
from repro.utils.shm import list_segments

ALL_ALGORITHMS = sorted(PARALLEL_ALGORITHMS)

needs_spawn = pytest.mark.skipif(
    not spawn_available(), reason="spawn start method unavailable"
)


class TestPartitioning:
    def test_ranges_cover_exactly(self):
        for count in (0, 1, 5, 16, 17, 100):
            for chunks in (1, 3, 7, 200):
                ranges = partition_ranges(count, chunks)
                covered = [i for start, stop in ranges for i in range(start, stop)]
                assert covered == list(range(count))

    def test_ranges_are_near_even(self):
        ranges = partition_ranges(10, 3)
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_graph_yields_no_ranges(self):
        assert partition_ranges(0, 4) == []

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1


class TestSupports:
    def test_all_registry_algorithms_supported(self):
        for name in ALL_ALGORITHMS:
            assert supports_parallel(PRUNING_ALGORITHMS[name]())

    def test_registry_matches_parallel_acronyms(self):
        assert PARALLEL_ALGORITHMS == set(PRUNING_ALGORITHMS)

    def test_prune_rejects_unknown_algorithm(self, example_blocks):
        class CustomPruning(PruningAlgorithm):
            def prune(self, weighting):
                raise NotImplementedError

        assert not supports_parallel(CustomPruning())
        executor = ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=1
        )
        with pytest.raises(ValueError, match="not node-partitionable"):
            executor.prune(CustomPruning())

    def test_node_centric_alias_kept(self):
        assert ParallelNodeCentricExecutor is ParallelMetaBlockingExecutor


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
class TestMatchesSerial:
    """The executor retains the exact same comparisons as the serial code."""

    def test_paper_example_multiprocess(self, example_blocks, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2, chunks=3
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_dirty_synthetic(self, tiny_dirty_blocks, name):
        blocks = tiny_dirty_blocks.sorted_by_cardinality()
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(blocks, "JS"), workers=2, chunks=7
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_clean_clean_synthetic(self, small_clean_blocks, name):
        blocks = small_clean_blocks.sorted_by_cardinality()
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(blocks, "JS"), workers=2, chunks=5
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_vectorized_backend(self, example_blocks, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(VectorizedEdgeWeighting(example_blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            VectorizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_original_backend_same_set(self, example_blocks, name):
        # The original backend's per-node neighbourhood ordering differs from
        # its global iter_edges() ordering, so compare as sets of pairs.
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OriginalEdgeWeighting(example_blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OriginalEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert sorted(executor.prune(algorithm).pairs) == sorted(serial.pairs)

    def test_ejs_degrees_shared_with_workers(self, example_blocks, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "EJS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "EJS"), workers=2
        )
        assert executor.prune(algorithm).pairs == serial.pairs

    def test_in_process_chunked_path(self, example_blocks, name):
        # workers=1 exercises the same chunked merge without a pool.
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=1, chunks=4
        )
        assert executor.prune(algorithm).pairs == serial.pairs


@pytest.fixture(scope="module")
def shm_js_executor(example_blocks):
    """One persistent shm-spawn pool shared by every JS algorithm test."""
    executor = ParallelMetaBlockingExecutor(
        OptimizedEdgeWeighting(example_blocks, "JS"),
        workers=2,
        chunks=3,
        backend="shm-spawn",
    )
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def shm_ejs_executor(example_blocks):
    """Shm-spawn pool under EJS, exercising the staged degree arrays."""
    executor = ParallelMetaBlockingExecutor(
        OptimizedEdgeWeighting(example_blocks, "EJS"),
        workers=2,
        chunks=3,
        backend="shm-spawn",
    )
    yield executor
    executor.close()


@needs_spawn
class TestSharedMemoryBackend:
    """The shm-spawn backend reproduces serial output for every family."""

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_matches_serial(self, example_blocks, shm_js_executor, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        assert shm_js_executor.backend == "shm-spawn"
        assert shm_js_executor.prune(algorithm).pairs == serial.pairs

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_ejs_degrees_staged_to_spawn_workers(
        self, example_blocks, shm_ejs_executor, name
    ):
        algorithm = PRUNING_ALGORITHMS[name]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "EJS"))
        assert shm_ejs_executor.prune(algorithm).pairs == serial.pairs

    def test_vectorized_backend(self, example_blocks):
        with ParallelMetaBlockingExecutor(
            VectorizedEdgeWeighting(example_blocks, "JS"),
            workers=2,
            backend="shm-spawn",
        ) as executor:
            for name in ALL_ALGORITHMS:
                algorithm = PRUNING_ALGORITHMS[name]()
                serial = algorithm.prune(
                    VectorizedEdgeWeighting(example_blocks, "JS")
                )
                assert executor.prune(algorithm).pairs == serial.pairs

    def test_dirty_synthetic(self, tiny_dirty_blocks):
        blocks = tiny_dirty_blocks.sorted_by_cardinality()
        with ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(blocks, "JS"),
            workers=2,
            chunks=7,
            backend="shm-spawn",
        ) as executor:
            for name in ALL_ALGORITHMS:
                algorithm = PRUNING_ALGORITHMS[name]()
                serial = algorithm.prune(OptimizedEdgeWeighting(blocks, "JS"))
                assert executor.prune(algorithm).pairs == serial.pairs

    def test_clean_clean_synthetic(self, small_clean_blocks):
        blocks = small_clean_blocks.sorted_by_cardinality()
        with ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(blocks, "JS"),
            workers=2,
            chunks=5,
            backend="shm-spawn",
        ) as executor:
            for name in ("CEP", "WEP", "RcCNP"):
                algorithm = PRUNING_ALGORITHMS[name]()
                serial = algorithm.prune(OptimizedEdgeWeighting(blocks, "JS"))
                assert executor.prune(algorithm).pairs == serial.pairs


@needs_spawn
class TestSegmentLifecycle:
    """Owned segments are unlinked on every exit path."""

    def test_close_unlinks_segments(self, example_blocks, shm_leak_check):
        executor = ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"),
            workers=2,
            backend="shm-spawn",
        )
        executor.prune(PRUNING_ALGORITHMS["ReWNP"]())
        assert executor._shared_index is not None  # pool + index still live
        executor.close()
        executor.close()  # idempotent

    def test_context_manager_unlinks_segments(
        self, example_blocks, shm_leak_check
    ):
        with ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"),
            workers=2,
            backend="shm-spawn",
        ) as executor:
            executor.prune(PRUNING_ALGORITHMS["CEP"]())

    def test_error_path_unlinks_segments(self, example_blocks, shm_leak_check):
        class CustomPruning(PruningAlgorithm):
            def prune(self, weighting):
                raise NotImplementedError

        executor = ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"),
            workers=2,
            backend="shm-spawn",
        )
        try:
            executor.prune(PRUNING_ALGORITHMS["WEP"]())  # pool + index live
            with pytest.raises(ValueError):
                executor.prune(CustomPruning())
        finally:
            executor.close()

    def test_del_backstop_unlinks_segments(self, example_blocks, shm_leak_check):
        executor = ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"),
            workers=2,
            backend="shm-spawn",
        )
        executor.prune(PRUNING_ALGORITHMS["WNP"]())
        del executor
        gc.collect()

    def test_stage_packs_destroyed_per_map(self, example_blocks):
        executor = ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "EJS"),
            workers=2,
            backend="shm-spawn",
        )
        try:
            before = list_segments()
            executor.prune(PRUNING_ALGORITHMS["RcWNP"]())
            # Only the index segment may outlive the maps; every staged
            # criteria pack must already be unlinked.
            spec = executor._shared_index.spec.pack
            assert (list_segments() - before) <= {spec.name}
        finally:
            executor.close()


class TestBackendResolution:
    def test_unknown_backend_rejected(self, example_blocks):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            ParallelMetaBlockingExecutor(
                OptimizedEdgeWeighting(example_blocks, "JS"),
                workers=2,
                backend="greenlets",
            )

    def test_single_worker_resolves_in_process(self, example_blocks):
        executor = ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"),
            workers=1,
            backend="fork",
        )
        assert executor.backend == "in-process"
        assert executor.pool_backend == "in-process"

    def test_auto_selects_threads(self, example_blocks):
        # Threads are available on every platform, so auto never needs a
        # start method — and never warns.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            executor = ParallelMetaBlockingExecutor(
                OptimizedEdgeWeighting(example_blocks, "JS"), workers=2
            )
        assert executor.backend == "threads"
        executor.close()

    @needs_spawn
    def test_forced_spawn_auto_still_threads(self, example_blocks, monkeypatch):
        # REPRO_FORCE_SPAWN only hides fork; the auto choice is threads
        # either way.
        monkeypatch.setenv("REPRO_FORCE_SPAWN", "1")
        executor = ParallelMetaBlockingExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert executor.backend == "threads"
        executor.close()

    @needs_spawn
    def test_forced_spawn_fork_request_falls_back(
        self, example_blocks, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FORCE_SPAWN", "1")
        with pytest.warns(RuntimeWarning, match="falling back to 'shm-spawn'"):
            executor = ParallelMetaBlockingExecutor(
                OptimizedEdgeWeighting(example_blocks, "JS"),
                workers=2,
                backend="fork",
            )
        assert executor.backend == "shm-spawn"
        executor.close()

    def test_explicit_backends_honoured(self, example_blocks):
        for backend in PARALLEL_BACKENDS:
            if backend == "shm-spawn" and not spawn_available():
                continue
            if backend == "fork" and not fork_available():
                continue
            executor = ParallelMetaBlockingExecutor(
                OptimizedEdgeWeighting(example_blocks, "JS"),
                workers=2,
                backend=backend,
            )
            assert executor.backend == backend
            executor.close()


class TestPhase1Helpers:
    def test_nearest_neighbor_sets_match_serial(self, example_blocks):
        from repro.core.pruning.redefined import nearest_neighbor_sets

        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert executor.nearest_neighbor_sets(2) == nearest_neighbor_sets(
            weighting, 2
        )

    def test_neighborhood_thresholds_match_serial(self, example_blocks):
        from repro.core.pruning.redefined import neighborhood_thresholds

        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        parallel = executor.neighborhood_thresholds()
        serial = neighborhood_thresholds(weighting)
        assert parallel.keys() == serial.keys()
        for entity, threshold in serial.items():
            assert parallel[entity] == pytest.approx(threshold, abs=1e-12)

    def test_map_neighborhoods_matches_serial(self, example_blocks):
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(example_blocks, "JS"), workers=2
        )
        assert executor.map_neighborhoods() == dict(
            weighting.iter_neighborhoods()
        )


class TestConvenience:
    def test_parallel_prune_supported(self, example_blocks):
        algorithm = PRUNING_ALGORITHMS["ReWNP"]()
        serial = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        result = parallel_prune(
            OptimizedEdgeWeighting(example_blocks, "JS"), algorithm, workers=2
        )
        assert result.pairs == serial.pairs

    def test_parallel_prune_edge_centric(self, example_blocks):
        for name in ("CEP", "WEP"):
            algorithm = PRUNING_ALGORITHMS[name]()
            serial = algorithm.prune(
                OptimizedEdgeWeighting(example_blocks, "JS")
            )
            result = parallel_prune(
                OptimizedEdgeWeighting(example_blocks, "JS"),
                algorithm,
                workers=2,
            )
            assert result.pairs == serial.pairs

    def test_parallel_prune_falls_back_for_unknown(self, example_blocks):
        class CustomPruning(PruningAlgorithm):
            def prune(self, weighting):
                return PRUNING_ALGORITHMS["WEP"]().prune(weighting)

        serial = PRUNING_ALGORITHMS["WEP"]().prune(
            OptimizedEdgeWeighting(example_blocks, "JS")
        )
        result = parallel_prune(
            OptimizedEdgeWeighting(example_blocks, "JS"),
            CustomPruning(),
            workers=2,
        )
        assert result.pairs == serial.pairs

    def test_empty_collection(self):
        blocks = BlockCollection([], 0)
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(blocks, "JS"), workers=2
        )
        assert executor.prune(PRUNING_ALGORITHMS["ReWNP"]()).pairs == []

    def test_singleton_graph(self):
        blocks = BlockCollection([Block("a", (0, 1))], num_entities=2)
        executor = ParallelNodeCentricExecutor(
            OptimizedEdgeWeighting(blocks, "JS"), workers=2, chunks=8
        )
        serial = PRUNING_ALGORITHMS["ReWNP"]().prune(
            OptimizedEdgeWeighting(blocks, "JS")
        )
        assert executor.prune(PRUNING_ALGORITHMS["ReWNP"]()).pairs == serial.pairs


class TestPipelineIntegration:
    def test_meta_block_parallel_matches_serial(self, small_dirty_blocks):
        serial = meta_block(small_dirty_blocks, scheme="JS", algorithm="RcWNP")
        parallel = meta_block(
            small_dirty_blocks, scheme="JS", algorithm="RcWNP", parallel=2
        )
        assert parallel.comparisons.pairs == serial.comparisons.pairs

    def test_meta_block_parallel_edge_centric_matches_serial(
        self, small_dirty_blocks
    ):
        for algorithm in ("CEP", "WEP"):
            serial = meta_block(
                small_dirty_blocks, scheme="JS", algorithm=algorithm
            )
            parallel = meta_block(
                small_dirty_blocks, scheme="JS", algorithm=algorithm, parallel=2
            )
            assert parallel.comparisons.pairs == serial.comparisons.pairs

    def test_meta_block_records_parallel_metadata(self, small_dirty_blocks):
        serial = meta_block(small_dirty_blocks, scheme="JS", algorithm="WEP")
        assert serial.effective_workers == 1
        assert serial.parallel_backend == "serial"
        parallel = meta_block(
            small_dirty_blocks, scheme="JS", algorithm="WEP", parallel=2
        )
        assert parallel.effective_workers == 2
        assert parallel.parallel_backend in PARALLEL_BACKENDS

    def test_meta_block_rejects_unknown_parallel_backend(
        self, small_dirty_blocks
    ):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            meta_block(
                small_dirty_blocks, parallel=2, parallel_backend="greenlets"
            )

    @needs_spawn
    def test_meta_block_explicit_shm_spawn(self, small_dirty_blocks):
        serial = meta_block(small_dirty_blocks, scheme="JS", algorithm="RcWNP")
        result = meta_block(
            small_dirty_blocks,
            scheme="JS",
            algorithm="RcWNP",
            parallel=2,
            parallel_backend="shm-spawn",
        )
        assert result.effective_workers == 2
        assert result.parallel_backend == "shm-spawn"
        assert result.comparisons.pairs == serial.comparisons.pairs

    @needs_spawn
    def test_meta_block_spawn_fallback_warns_once(
        self, small_dirty_blocks, monkeypatch, shm_leak_check
    ):
        """Forced spawn platform: an explicit fork request falls back to
        shm-spawn, with exactly one RuntimeWarning per meta_block call (not
        one per chunk) and the chosen backend recorded in the result
        metadata."""
        monkeypatch.setenv("REPRO_FORCE_SPAWN", "1")
        serial = meta_block(small_dirty_blocks, scheme="JS", algorithm="RcWNP")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = meta_block(
                small_dirty_blocks,
                scheme="JS",
                algorithm="RcWNP",
                parallel=2,
                parallel_backend="fork",
            )
        fallbacks = [
            entry
            for entry in caught
            if issubclass(entry.category, RuntimeWarning)
            and "shm-spawn" in str(entry.message)
        ]
        assert len(fallbacks) == 1
        assert result.effective_workers == 2
        assert result.parallel_backend == "shm-spawn"
        assert result.comparisons.pairs == serial.comparisons.pairs

    def test_meta_block_auto_selects_threads(self, small_dirty_blocks):
        serial = meta_block(small_dirty_blocks, scheme="JS", algorithm="RcWNP")
        result = meta_block(
            small_dirty_blocks, scheme="JS", algorithm="RcWNP", parallel=2
        )
        assert result.parallel_backend == "threads"
        assert result.comparisons.pairs == serial.comparisons.pairs

    def test_meta_block_warns_for_unsupported_algorithm(
        self, small_dirty_blocks
    ):
        class CustomPruning(PruningAlgorithm):
            name = "custom"

            def prune(self, weighting):
                return PRUNING_ALGORITHMS["WEP"]().prune(weighting)

        with pytest.warns(RuntimeWarning, match="does not support parallel"):
            result = meta_block(
                small_dirty_blocks,
                scheme="JS",
                algorithm=CustomPruning(),
                parallel=2,
            )
        assert result.effective_workers == 1
        assert result.parallel_backend == "serial"

    def test_workflow_round_trips_parallel(self):
        from repro import TokenBlocking
        from repro.core.pipeline import MetaBlockingWorkflow

        workflow = MetaBlockingWorkflow(
            TokenBlocking(),
            algorithm="RcWNP",
            parallel=2,
            parallel_backend="shm-spawn",
            chunk_size=1024,
        )
        config = workflow.to_config()
        assert config["parallel"] == 2
        assert config["parallel_backend"] == "shm-spawn"
        assert config["chunk_size"] == 1024
        restored = MetaBlockingWorkflow.from_config(config)
        assert restored.parallel == 2
        assert restored.parallel_backend == "shm-spawn"
        assert restored.chunk_size == 1024
