"""Unit tests for the schema-agnostic tokenizer."""

import pytest

from repro.datamodel.profiles import EntityProfile
from repro.utils.tokenize import (
    attribute_value_tokens,
    character_qgrams,
    profile_tokens,
    token_suffixes,
    tokenize,
)


class TestTokenize:
    def test_whitespace_split(self):
        assert tokenize("Jack Lloyd Miller") == ["jack", "lloyd", "miller"]

    def test_hyphen_splits(self):
        # The paper's "car vendor-seller" example relies on this.
        assert tokenize("car vendor-seller") == ["car", "vendor", "seller"]

    def test_punctuation_splits(self):
        assert tokenize("Smith, J.; Doe, A.") == ["smith", "j", "doe", "a"]

    def test_lowercases(self):
        assert tokenize("ABC Def") == ["abc", "def"]

    def test_numbers_kept(self):
        assert tokenize("year 2016") == ["year", "2016"]

    def test_underscore_splits(self):
        assert tokenize("foo_bar") == ["foo", "bar"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("--- ,,, !!!") == []

    def test_min_length_filters(self):
        assert tokenize("a bb ccc", min_length=2) == ["bb", "ccc"]

    def test_repeated_tokens_preserved(self):
        assert tokenize("la la land") == ["la", "la", "land"]


class TestAttributeValueTokens:
    def test_union_over_values(self):
        tokens = attribute_value_tokens(["alpha beta", "beta gamma"])
        assert tokens == {"alpha", "beta", "gamma"}

    def test_empty_iterable(self):
        assert attribute_value_tokens([]) == set()


class TestProfileTokens:
    def test_ignores_attribute_names(self):
        profile = EntityProfile.from_dict(
            "x", {"uniquename": "alpha", "othername": "beta"}
        )
        tokens = profile_tokens(profile)
        assert tokens == {"alpha", "beta"}
        assert "uniquename" not in tokens

    def test_distinct(self):
        profile = EntityProfile.from_dict("x", {"a": "w w w", "b": "w"})
        assert profile_tokens(profile) == {"w"}


class TestCharacterQgrams:
    def test_trigrams(self):
        assert character_qgrams("abcd", q=3) == {"abc", "bcd"}

    def test_short_token_kept_whole(self):
        assert character_qgrams("ab", q=3) == {"ab"}

    def test_multiple_tokens(self):
        grams = character_qgrams("ab cd", q=2)
        assert grams == {"ab", "cd"}

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            character_qgrams("abc", q=0)


class TestTokenSuffixes:
    def test_all_suffixes(self):
        assert token_suffixes("abcde", 3) == {"abcde", "bcde", "cde"}

    def test_too_short_token(self):
        assert token_suffixes("ab", 3) == set()

    def test_exact_length(self):
        assert token_suffixes("abc", 3) == {"abc"}

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            token_suffixes("abc", 0)
