"""End-to-end out-of-core tests: spilled runs are bit-identical to eager.

Covers the full matrix the tentpole promises: every pruning algorithm,
serial and all three parallel pool backends, eager versus spilled output —
the retained comparison sequence must be identical everywhere. Plus the
failure path: a crash mid-spill leaves no artifacts behind.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.edge_weighting import OptimizedEdgeWeighting
from repro.core.execution import ExecutionConfig
from repro.core.parallel import (
    PARALLEL_BACKENDS,
    ParallelMetaBlockingExecutor,
    fork_available,
    spawn_available,
)
from repro.core.pipeline import meta_block
from repro.core.pruning import PRUNING_ALGORITHMS
from repro.datamodel.sinks import ComparisonView, SpillSink, load_spilled_view

ALL_ALGORITHMS = sorted(PRUNING_ALGORITHMS)


def backend_available(backend: str) -> bool:
    if backend == "fork":
        return fork_available()
    if backend == "shm-spawn":
        return spawn_available()
    return True


def run(blocks, algorithm, execution=None, **kwargs):
    return meta_block(
        blocks,
        scheme="ECBS",
        algorithm=algorithm,
        block_filtering_ratio=0.8,
        execution=execution,
        **kwargs,
    )


class TestSerialSpill:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_spilled_serial_matches_eager(
        self, small_clean_blocks, tmp_path, algorithm
    ):
        eager = run(small_clean_blocks, algorithm)
        spilled = run(
            small_clean_blocks,
            algorithm,
            execution=ExecutionConfig(spill_dir=tmp_path, memory_budget=4096),
        )
        assert isinstance(eager.comparisons, ComparisonView)
        assert isinstance(spilled.comparisons, ComparisonView)
        assert eager.spill_manifest is None
        assert spilled.spill_manifest is not None
        assert list(spilled.comparisons) == list(eager.comparisons)

    def test_result_stream_matches_pairs(self, small_clean_blocks, tmp_path):
        result = run(
            small_clean_blocks,
            "WEP",
            execution=ExecutionConfig(spill_dir=tmp_path),
        )
        streamed = [
            (int(left), int(right))
            for sources, targets in result.stream(batch_size=128)
            for left, right in zip(sources.tolist(), targets.tolist())
        ]
        assert streamed == list(result.comparisons)

    def test_manifest_reopens_after_run(self, small_clean_blocks, tmp_path):
        result = run(
            small_clean_blocks,
            "CEP",
            execution=ExecutionConfig(spill_dir=tmp_path),
        )
        reopened = load_spilled_view(result.spill_manifest)
        assert list(reopened) == list(result.comparisons)


class TestParallelSpill:
    @pytest.mark.parametrize(
        "backend",
        [
            pytest.param(
                backend,
                marks=pytest.mark.skipif(
                    not backend_available(backend),
                    reason=f"{backend} start method unavailable",
                ),
            )
            for backend in PARALLEL_BACKENDS
        ],
    )
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_spilled_parallel_matches_eager_serial(
        self, small_clean_blocks, tmp_path, algorithm, backend, shm_leak_check
    ):
        eager = run(small_clean_blocks, algorithm)
        spilled = run(
            small_clean_blocks,
            algorithm,
            execution=ExecutionConfig(
                parallel=2,
                parallel_backend=backend,
                spill_dir=tmp_path,
                memory_budget=1 << 14,
            ),
        )
        assert spilled.parallel_backend == backend
        assert spilled.spill_manifest is not None
        assert list(spilled.comparisons) == list(eager.comparisons)

    def test_workers_write_shards_directly(self, small_clean_blocks, tmp_path):
        # The owner never re-buffers worker output when spilling: chunk
        # results arrive as shard files written inside the run directory.
        result = run(
            small_clean_blocks,
            "WNP",
            execution=ExecutionConfig(parallel=2, spill_dir=tmp_path),
        )
        run_dir = result.spill_manifest.parent
        worker_shards = list(run_dir.glob("chunk-*.npy"))
        assert worker_shards, "expected worker-written chunk-*.npy shards"


class TestCrashCleanup:
    @pytest.mark.parametrize("parallel", [None, 2])
    def test_crash_mid_spill_removes_artifacts(
        self, small_clean_blocks, spill_leak_check, parallel, monkeypatch
    ):
        # Make the spill fail partway through: the first chunk lands fine,
        # the next one explodes. Serial pruning feeds the sink via append,
        # the parallel owner via adopt_shard — fail whichever comes second.
        # The sink's abort must then remove the whole run directory
        # (spill_leak_check asserts nothing is left).
        calls = {"n": 0}

        def flaky(original):
            def wrapper(self, *args, **kwargs):
                calls["n"] += 1
                if calls["n"] > 1:
                    raise OSError("disk full (simulated)")
                return original(self, *args, **kwargs)

            return wrapper

        monkeypatch.setattr(SpillSink, "append", flaky(SpillSink.append))
        monkeypatch.setattr(
            SpillSink, "adopt_shard", flaky(SpillSink.adopt_shard)
        )
        with pytest.raises(OSError, match="disk full"):
            run(
                small_clean_blocks,
                "WEP",
                execution=ExecutionConfig(
                    parallel=parallel,
                    # Small edge chunks force several serial appends.
                    chunk_size=64,
                    spill_dir=spill_leak_check,
                    memory_budget=1024,
                ),
            )

    def test_executor_abort_cleans_spill_dir(
        self, small_clean_blocks, spill_leak_check
    ):
        # Same property one layer down: a failure inside the executor's
        # prune aborts the sink it was handed.
        weighting = OptimizedEdgeWeighting(small_clean_blocks, "JS")
        executor = ParallelMetaBlockingExecutor(weighting, workers=2)
        sink = SpillSink(spill_dir=spill_leak_check)

        class ExplodingAlgorithm(PRUNING_ALGORITHMS["WEP"]):
            @property
            def threshold(self):
                raise RuntimeError("boom before any edge is weighted")

            @threshold.setter
            def threshold(self, value):
                pass

        try:
            with pytest.raises(RuntimeError, match="boom"):
                executor.prune(ExplodingAlgorithm(), sink=sink)
        finally:
            executor.close()
        assert not sink.directory.exists()


class TestShardValidation:
    """Length + checksum validation of spilled shards (fault tolerance)."""

    def _spilled(self, blocks, spill_dir):
        result = run(
            blocks,
            "WEP",
            execution=ExecutionConfig(spill_dir=spill_dir, memory_budget=2048),
        )
        return result

    def test_validate_accepts_intact_run(self, small_clean_blocks, tmp_path):
        result = self._spilled(small_clean_blocks, tmp_path)
        view = load_spilled_view(result.spill_manifest, validate=True)
        assert list(view) == list(result.comparisons)
        result.comparisons.release()

    def test_validate_detects_truncated_shard(self, small_clean_blocks, tmp_path):
        from repro.core.faults import SpillCorrupted, truncate_shard

        result = self._spilled(small_clean_blocks, tmp_path)
        manifest = Path(result.spill_manifest)
        entry = json.loads(manifest.read_text())["shards"][0]
        truncate_shard(manifest.parent / entry["file"])
        with pytest.raises(SpillCorrupted):
            load_spilled_view(manifest, validate=True)
        result.comparisons.release()

    def test_validate_detects_flipped_payload(self, small_clean_blocks, tmp_path):
        from repro.core.faults import SpillCorrupted

        result = self._spilled(small_clean_blocks, tmp_path)
        manifest = Path(result.spill_manifest)
        entry = json.loads(manifest.read_text())["shards"][0]
        shard_path = manifest.parent / entry["file"]
        stacked = np.load(shard_path)
        stacked[0, 0] += 1  # same length, different content: CRC must catch it
        np.save(shard_path, stacked)
        with pytest.raises(SpillCorrupted, match="checksum"):
            load_spilled_view(manifest, validate=True)
        result.comparisons.release()

    def test_validate_detects_missing_shard(self, small_clean_blocks, tmp_path):
        from repro.core.faults import SpillCorrupted

        result = self._spilled(small_clean_blocks, tmp_path)
        manifest = Path(result.spill_manifest)
        entry = json.loads(manifest.read_text())["shards"][0]
        (manifest.parent / entry["file"]).unlink()
        with pytest.raises(SpillCorrupted, match="missing"):
            load_spilled_view(manifest, validate=True)
        result.comparisons.release()

    def test_manifest_version_mismatch_rejected(self, small_clean_blocks, tmp_path):
        result = self._spilled(small_clean_blocks, tmp_path)
        manifest = Path(result.spill_manifest)
        payload = json.loads(manifest.read_text())
        payload["version"] = 999
        manifest.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="manifest version"):
            load_spilled_view(manifest, validate=True)
        result.comparisons.release()

    def test_write_shard_checksum_round_trips(self, tmp_path):
        from repro.datamodel.sinks import pair_checksum

        sources = np.array([1, 2, 3], dtype=np.int64)
        targets = np.array([601, 602, 603], dtype=np.int64)
        name, crc = SpillSink.write_shard(tmp_path, sources, targets)
        stacked = np.load(tmp_path / name)
        assert crc == pair_checksum(stacked[0], stacked[1])
        assert crc != pair_checksum(stacked[1], stacked[0])
