"""Tests for the supervised meta-blocking extension."""

import numpy as np
import pytest

from repro.evaluation import evaluate
from repro.supervised import (
    FEATURE_NAMES,
    EdgeFeatureExtractor,
    LogisticRegressionClassifier,
    SupervisedMetaBlocking,
    train_from_ground_truth,
    training_edges,
)


class TestEdgeFeatureExtractor:
    def test_feature_vector_shape(self, example_blocks):
        extractor = EdgeFeatureExtractor(example_blocks)
        vector = extractor.features_for(0, 2)
        assert vector.shape == (len(FEATURE_NAMES),)

    def test_known_values_on_paper_example(self, example_blocks):
        extractor = EdgeFeatureExtractor(example_blocks)
        # p1-p3 share jack+miller: CBS=2, JS=2/6, RS=2/min(3,5)=2/3,
        # ARCS=1/1+1/1=2 (both unit blocks).
        vector = extractor.features_for(0, 2)
        assert vector[0] == 2.0
        assert vector[1] == pytest.approx(2.0)
        assert vector[2] == pytest.approx(2 / 6)
        assert vector[4] == pytest.approx(2 / 3)

    def test_disjoint_pair_all_zero_cooccurrence(self, example_blocks):
        extractor = EdgeFeatureExtractor(example_blocks)
        vector = extractor.features_for(0, 1)  # p1, p2 never co-occur
        assert vector[0] == 0.0
        assert vector[2] == 0.0

    def test_edge_iteration_matches_graph(self, example_blocks):
        extractor = EdgeFeatureExtractor(example_blocks)
        edges = {(l, r) for l, r, _ in extractor.iter_edge_features()}
        assert edges == example_blocks.distinct_comparisons()

    def test_neighborhood_features(self, example_blocks):
        extractor = EdgeFeatureExtractor(example_blocks)
        neighbors = dict(extractor.iter_neighborhood_features(2))
        assert set(neighbors) == {0, 1, 3, 4, 5}

    def test_iteration_is_repeatable(self, example_blocks):
        extractor = EdgeFeatureExtractor(example_blocks)
        first = [(l, r) for l, r, _ in extractor.iter_edge_features()]
        second = [(l, r) for l, r, _ in extractor.iter_edge_features()]
        assert first == second


class TestLogisticRegression:
    def _separable_data(self):
        rng = np.random.default_rng(0)
        negatives = rng.normal(0.0, 0.5, size=(100, 3))
        positives = rng.normal(3.0, 0.5, size=(100, 3))
        X = np.vstack([negatives, positives])
        y = np.array([0.0] * 100 + [1.0] * 100)
        return X, y

    def test_learns_separable_data(self):
        X, y = self._separable_data()
        model = LogisticRegressionClassifier().fit(X, y)
        accuracy = (model.predict(X) == y).mean()
        assert accuracy > 0.97

    def test_probabilities_in_range(self):
        X, y = self._separable_data()
        model = LogisticRegressionClassifier().fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict_proba([[1, 2, 3]])

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            LogisticRegressionClassifier().fit([[1.0], [2.0]], [1.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier().fit([[1.0]], [1.0, 0.0])

    def test_constant_feature_does_not_crash(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0], [4.0, 5.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        model = LogisticRegressionClassifier(iterations=200).fit(X, y)
        assert model.is_fitted

    def test_class_balancing_helps_imbalanced_recall(self):
        rng = np.random.default_rng(1)
        negatives = rng.normal(0.0, 1.0, size=(500, 2))
        positives = rng.normal(2.0, 1.0, size=(20, 2))
        X = np.vstack([negatives, positives])
        y = np.array([0.0] * 500 + [1.0] * 20)
        balanced = LogisticRegressionClassifier(balance_classes=True).fit(X, y)
        unbalanced = LogisticRegressionClassifier(balance_classes=False).fit(X, y)
        recall_balanced = balanced.predict(X[y == 1]).mean()
        recall_unbalanced = unbalanced.predict(X[y == 1]).mean()
        assert recall_balanced >= recall_unbalanced


class TestSupervisedMetaBlocking:
    def test_mode_validated(self, example_blocks):
        model = _trained_on_example(example_blocks)
        with pytest.raises(ValueError, match="unknown mode"):
            SupervisedMetaBlocking(model, mode="xxx")

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="fitted"):
            SupervisedMetaBlocking(LogisticRegressionClassifier())

    def test_threshold_validated(self, example_blocks):
        model = _trained_on_example(example_blocks)
        with pytest.raises(ValueError):
            SupervisedMetaBlocking(model, probability_threshold=0.0)

    @pytest.mark.parametrize("mode", SupervisedMetaBlocking.MODES)
    def test_output_edges_subset_of_graph(self, example_blocks, mode):
        extractor = EdgeFeatureExtractor(example_blocks)
        model = _trained_on_example(example_blocks)
        pruned = SupervisedMetaBlocking(model, mode=mode).prune(extractor)
        assert pruned.distinct_comparisons() <= (
            example_blocks.distinct_comparisons()
        )

    def test_training_edges_requires_data(self, example_blocks):
        extractor = EdgeFeatureExtractor(example_blocks)
        with pytest.raises(ValueError):
            training_edges(extractor, [])

    def test_beats_recall_of_random_on_synthetic(
        self, small_dirty, small_dirty_blocks
    ):
        extractor = EdgeFeatureExtractor(small_dirty_blocks)
        model = train_from_ground_truth(
            extractor, small_dirty.ground_truth, seed=2
        )
        pruned = SupervisedMetaBlocking(model, mode="wep").prune(extractor)
        report = evaluate(
            pruned, small_dirty.ground_truth, small_dirty_blocks.cardinality
        )
        baseline = evaluate(small_dirty_blocks, small_dirty.ground_truth)
        assert report.pc > 0.8
        assert report.pq > 5 * baseline.pq

    def test_cnp_mode_redundancy_free(self, small_dirty, small_dirty_blocks):
        extractor = EdgeFeatureExtractor(small_dirty_blocks)
        model = train_from_ground_truth(
            extractor, small_dirty.ground_truth, seed=2
        )
        pruned = SupervisedMetaBlocking(model, mode="cnp").prune(extractor)
        assert pruned.cardinality == len(pruned.distinct_comparisons())


def _trained_on_example(blocks):
    from repro.datamodel.groundtruth import DuplicateSet

    extractor = EdgeFeatureExtractor(blocks)
    labelled = [
        (0, 2, True),
        (1, 3, True),
        (2, 3, False),
        (3, 4, False),
        (4, 5, False),
        (2, 5, False),
    ]
    X, y = training_edges(extractor, labelled)
    return LogisticRegressionClassifier(iterations=300).fit(X, y)
