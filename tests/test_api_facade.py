"""The ``repro.api`` facade and the execution-kwargs deprecation policy."""

import warnings

import pytest

import repro
from repro import api
from repro.blocking import QGramsBlocking, TokenBlocking
from repro.core.execution import (
    EXECUTION_KWARGS_REMOVAL_RELEASE,
    ExecutionConfig,
)
from repro.datamodel import BlockCollection
from repro.datasets import paper_example_dataset
from repro.incremental import IncrementalMetaBlocking
from repro.serve import ResolverServer


class TestFacadeSurface:
    def test_api_module_is_exposed_at_the_root(self):
        assert repro.api is api
        for name in ("build_index", "meta_block", "stream_resolver", "serve"):
            assert callable(getattr(api, name))
            assert callable(getattr(repro, name))
            assert name in repro.__all__

    def test_build_index(self):
        dataset = paper_example_dataset()
        blocks = api.build_index(dataset)
        assert isinstance(blocks, BlockCollection)
        unpurged = api.build_index(dataset, purge=False)
        assert len(unpurged) >= len(blocks)

    def test_build_index_accepts_method_instances(self):
        dataset = paper_example_dataset()
        by_name = api.build_index(dataset, blocking="qgrams", purge=False)
        by_instance = api.build_index(
            dataset, blocking=QGramsBlocking(), purge=False
        )
        assert len(by_name) == len(by_instance)

    def test_build_index_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown blocking method"):
            api.build_index(paper_example_dataset(), blocking="nope")

    def test_meta_block_round_trip(self):
        dataset = paper_example_dataset()
        blocks = api.build_index(dataset)
        result = api.meta_block(blocks, scheme="CBS", algorithm="CNP")
        assert len(result.comparisons) > 0

    def test_stream_resolver(self):
        resolver = api.stream_resolver(scheme="CBS", k=2, batch_size=4)
        assert isinstance(resolver, IncrementalMetaBlocking)
        assert resolver.scheme.name == "CBS"
        assert resolver.k == 2
        assert resolver.batch_size == 4
        with pytest.raises(ValueError, match="unknown blocking method"):
            api.stream_resolver(blocking="nope")

    def test_stream_resolver_accepts_method_instances(self):
        resolver = api.stream_resolver(blocking=TokenBlocking())
        assert isinstance(resolver, IncrementalMetaBlocking)

    def test_serve_returns_unstarted_server(self):
        server = api.serve(host="127.0.0.1")
        assert isinstance(server, ResolverServer)
        assert isinstance(server.resolver, IncrementalMetaBlocking)
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        custom = api.serve(
            api.stream_resolver(scheme="CBS"), path="/tmp/unused.sock"
        )
        assert custom.resolver.scheme.name == "CBS"


class TestDeprecationPolicy:
    def test_meta_block_alias_names_config_and_release(self):
        blocks = api.build_index(paper_example_dataset())
        with pytest.warns(DeprecationWarning) as caught:
            api.meta_block(blocks, algorithm="CNP", parallel=1)
        (warning,) = caught.list
        message = str(warning.message)
        assert "parallel" in message
        assert "ExecutionConfig" in message
        assert EXECUTION_KWARGS_REMOVAL_RELEASE in message

    def test_execution_config_is_the_quiet_path(self):
        blocks = api.build_index(paper_example_dataset())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.meta_block(
                blocks, algorithm="CNP", execution=ExecutionConfig(parallel=1)
            )

    def test_wire_protocol_execution_round_trip(self):
        execution = ExecutionConfig(
            parallel=2,
            parallel_backend="threads",
            compact_ratio=0.5,
            batch_size=8,
        )
        resolver = api.stream_resolver(execution=execution)
        wire = resolver.stats()["execution"]
        assert ExecutionConfig.from_dict(wire) == execution
