"""Unit tests for entity profiles and collections."""

import pytest

from repro.datamodel.profiles import (
    Attribute,
    CollectionStatistics,
    EntityCollection,
    EntityProfile,
)


class TestEntityProfile:
    def test_from_dict_scalar(self):
        profile = EntityProfile.from_dict("p", {"name": "Alice"})
        assert profile.attributes == (Attribute("name", "Alice"),)

    def test_from_dict_list_values(self):
        profile = EntityProfile.from_dict("p", {"actors": ["A", "B"]})
        assert profile.values("actors") == ["A", "B"]

    def test_from_dict_skips_none_and_empty(self):
        profile = EntityProfile.from_dict("p", {"a": None, "b": "", "c": "x"})
        assert profile.attribute_names == {"c"}

    def test_from_dict_coerces_non_strings(self):
        profile = EntityProfile.from_dict("p", {"year": 2016})
        assert profile.values("year") == ["2016"]

    def test_values_without_name(self):
        profile = EntityProfile.from_dict("p", {"a": "1", "b": "2"})
        assert sorted(profile.values()) == ["1", "2"]

    def test_values_missing_attribute(self):
        profile = EntityProfile.from_dict("p", {"a": "1"})
        assert profile.values("missing") == []

    def test_repeated_attribute_names_allowed(self):
        profile = EntityProfile(
            "p", (Attribute("tag", "x"), Attribute("tag", "y"))
        )
        assert profile.values("tag") == ["x", "y"]

    def test_merged_with_unions_attributes(self):
        left = EntityProfile.from_dict("a", {"x": "1"})
        right = EntityProfile.from_dict("b", {"x": "1", "y": "2"})
        merged = left.merged_with(right)
        assert merged.identifier == "a+b"
        assert set(merged.attributes) == {Attribute("x", "1"), Attribute("y", "2")}
        # Shared attribute is not duplicated.
        assert len(merged.attributes) == 2

    def test_immutability(self):
        profile = EntityProfile.from_dict("p", {"a": "1"})
        with pytest.raises(AttributeError):
            profile.identifier = "q"  # type: ignore[misc]


class TestEntityCollection:
    def test_positions_are_ids(self):
        profiles = [EntityProfile.from_dict(f"p{i}", {"a": str(i)}) for i in range(3)]
        collection = EntityCollection(profiles)
        assert collection.index_of("p1") == 1
        assert collection[2].identifier == "p2"

    def test_duplicate_identifier_rejected(self):
        profiles = [
            EntityProfile.from_dict("same", {"a": "1"}),
            EntityProfile.from_dict("same", {"a": "2"}),
        ]
        with pytest.raises(ValueError, match="duplicate profile identifier"):
            EntityCollection(profiles)

    def test_attribute_names(self):
        collection = EntityCollection(
            [
                EntityProfile.from_dict("a", {"x": "1"}),
                EntityProfile.from_dict("b", {"y": "2"}),
            ]
        )
        assert collection.attribute_names == {"x", "y"}

    def test_name_value_pair_counts(self):
        collection = EntityCollection(
            [
                EntityProfile.from_dict("a", {"x": "1", "y": "2"}),
                EntityProfile.from_dict("b", {"x": "3"}),
            ]
        )
        assert collection.total_name_value_pairs == 3
        assert collection.mean_name_value_pairs == pytest.approx(1.5)

    def test_empty_collection(self):
        collection = EntityCollection([])
        assert len(collection) == 0
        assert collection.mean_name_value_pairs == 0.0


class TestCollectionStatistics:
    def test_of(self):
        collection = EntityCollection(
            [EntityProfile.from_dict("a", {"x": "1", "y": "2"})], name="demo"
        )
        stats = CollectionStatistics.of(collection)
        assert stats.name == "demo"
        assert stats.num_profiles == 1
        assert stats.num_attribute_names == 2
        assert stats.num_name_value_pairs == 2
        assert stats.mean_name_value_pairs == 2.0
