"""Unit tests for the evaluation measures."""

import math

import pytest

from repro.datamodel.blocks import Block, BlockCollection, ComparisonCollection
from repro.datamodel.groundtruth import DuplicateSet
from repro.evaluation import (
    evaluate,
    pairs_completeness,
    pairs_quality,
    profile_blocks,
    reduction_ratio,
)


class TestEvaluate:
    def test_pc_pq(self):
        truth = DuplicateSet([(0, 1), (2, 3)])
        source = ComparisonCollection([(0, 1), (0, 2), (1, 3)], num_entities=4)
        report = evaluate(source, truth)
        assert report.pc == 0.5
        assert report.pq == pytest.approx(1 / 3)

    def test_redundant_comparisons_hurt_pq_not_pc(self):
        truth = DuplicateSet([(0, 1)])
        once = ComparisonCollection([(0, 1)], num_entities=2)
        twice = ComparisonCollection([(0, 1), (0, 1)], num_entities=2)
        assert evaluate(once, truth).pc == evaluate(twice, truth).pc == 1.0
        assert evaluate(twice, truth).pq == 0.5

    def test_rr(self):
        truth = DuplicateSet([(0, 1)])
        source = ComparisonCollection([(0, 1)], num_entities=2)
        report = evaluate(source, truth, reference_cardinality=10)
        assert report.rr == pytest.approx(0.9)

    def test_rr_none_without_reference(self):
        report = evaluate(
            ComparisonCollection([(0, 1)], 2), DuplicateSet([(0, 1)])
        )
        assert report.rr is None

    def test_block_collection_source(self):
        truth = DuplicateSet([(0, 1)])
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (0, 1, 2))], num_entities=3
        )
        report = evaluate(blocks, truth)
        assert report.cardinality == 4  # 1 + 3, redundancy included
        assert report.pc == 1.0
        assert report.pq == 0.25

    def test_empty_truth(self):
        report = evaluate(
            ComparisonCollection([(0, 1)], 2), DuplicateSet([])
        )
        assert report.pc == 0.0
        assert report.pq == 0.0

    def test_empty_source(self):
        report = evaluate(ComparisonCollection([], 2), DuplicateSet([(0, 1)]))
        assert report.pc == 0.0
        assert report.pq == 0.0

    def test_str_rendering(self):
        report = evaluate(
            ComparisonCollection([(0, 1)], 2),
            DuplicateSet([(0, 1)]),
            reference_cardinality=4,
        )
        text = str(report)
        assert "PC=1.000" in text and "RR=0.750" in text


class TestStandaloneHelpers:
    def test_pairs_completeness(self):
        truth = DuplicateSet([(0, 1), (2, 3)])
        source = ComparisonCollection([(0, 1)], 4)
        assert pairs_completeness(source, truth) == 0.5

    def test_pairs_quality(self):
        truth = DuplicateSet([(0, 1)])
        source = ComparisonCollection([(0, 1), (1, 2)], 3)
        assert pairs_quality(source, truth) == 0.5

    def test_reduction_ratio(self):
        assert reduction_ratio(25, 100) == 0.75

    def test_reduction_ratio_invalid_reference(self):
        with pytest.raises(ValueError):
            reduction_ratio(5, 0)


class TestProfileBlocks:
    def test_paper_example_profile(self, example_blocks, example_dataset):
        profile = profile_blocks(
            example_blocks,
            example_dataset.ground_truth,
            reference_cardinality=example_dataset.brute_force_comparisons,
        )
        assert profile.num_blocks == 8
        assert profile.cardinality == 13
        assert profile.graph_order == 6
        assert profile.graph_size == 10
        assert profile.pc == 1.0
        assert profile.pq == pytest.approx(2 / 13)
        assert profile.rr == pytest.approx(1 - 13 / 15)
        assert profile.bpe == pytest.approx(18 / 6)

    def test_row_serialisation(self, example_blocks, example_dataset):
        profile = profile_blocks(example_blocks, example_dataset.ground_truth)
        row = profile.row()
        assert row["|B|"] == 8
        assert row["||B||"] == 13
        assert math.isnan(row["RR"])
