"""Property-based tests (hypothesis) for the extension modules."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import TokenBlocking
from repro.datamodel.profiles import EntityProfile
from repro.incremental import IncrementalMetaBlocking
from repro.matching.er_clustering import (
    center_clustering,
    merge_center_clustering,
    unique_mapping_clustering,
)
from repro.matching.similarity import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
)
from repro.supervised.classifier import LogisticRegressionClassifier

words = st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=12)
short_words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


class TestStringSimilarityProperties:
    @given(left=words, right=words)
    @settings(max_examples=150, deadline=None)
    def test_levenshtein_metric_axioms(self, left, right):
        distance = levenshtein(left, right)
        assert distance >= 0
        assert (distance == 0) == (left == right)
        assert distance == levenshtein(right, left)
        assert distance <= max(len(left), len(right))

    @given(left=words, mid=words, right=words)
    @settings(max_examples=100, deadline=None)
    def test_levenshtein_triangle_inequality(self, left, mid, right):
        assert levenshtein(left, right) <= (
            levenshtein(left, mid) + levenshtein(mid, right)
        )

    @given(left=words, right=words)
    @settings(max_examples=150, deadline=None)
    def test_similarities_bounded(self, left, right):
        for function in (levenshtein_similarity, jaro, jaro_winkler):
            value = function(left, right)
            assert 0.0 <= value <= 1.0 + 1e-12

    @given(left=words, right=words)
    @settings(max_examples=100, deadline=None)
    def test_jaro_winkler_dominates_jaro(self, left, right):
        assert jaro_winkler(left, right) >= jaro(left, right) - 1e-12

    @given(word=words)
    @settings(max_examples=60, deadline=None)
    def test_identity_scores_one(self, word):
        assert levenshtein_similarity(word, word) == 1.0
        assert jaro(word, word) == 1.0


scored_pairs = st.lists(
    st.tuples(
        st.integers(0, 9),
        st.integers(0, 9),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ).filter(lambda t: t[0] != t[1]),
    max_size=30,
)


class TestClusteringProperties:
    @given(scored=scored_pairs)
    @settings(max_examples=80, deadline=None)
    def test_center_clusters_are_disjoint(self, scored):
        clusters = center_clustering(scored, 10)
        seen: set[int] = set()
        for cluster in clusters:
            assert len(cluster) > 1
            assert not (set(cluster) & seen)
            seen |= set(cluster)

    @given(scored=scored_pairs)
    @settings(max_examples=80, deadline=None)
    def test_merge_center_coarsens_center(self, scored):
        center = center_clustering(scored, 10)
        merged = merge_center_clustering(scored, 10)
        center_entities = {e for cluster in center for e in cluster}
        merged_entities = {e for cluster in merged for e in cluster}
        assert center_entities <= merged_entities

    @given(scored=scored_pairs)
    @settings(max_examples=80, deadline=None)
    def test_unique_mapping_is_one_to_one(self, scored):
        cross = [
            (left, right, score)
            for left, right, score in (
                (min(l, r), max(l, r), s) for l, r, s in scored
            )
            if left < 5 <= right
        ]
        mapping = unique_mapping_clustering(cross, split=5)
        lefts = [left for left, _ in mapping]
        rights = [right for _, right in mapping]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))


class TestIncrementalProperties:
    @given(
        texts=st.lists(
            st.lists(short_words, min_size=1, max_size=5).map(" ".join),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_candidates_always_older_and_capped(self, texts):
        resolver = IncrementalMetaBlocking(
            keys_for=TokenBlocking().keys_for, k=3, filtering_ratio=1.0
        )
        for position, text in enumerate(texts):
            profile = EntityProfile.from_dict(f"p{position}", {"t": text})
            candidates = resolver.add(profile)
            assert len(candidates) <= 3
            for candidate in candidates:
                assert candidate.entity_id < position
                assert candidate.weight >= 0.0
                assert candidate.common_blocks >= 1

    @given(
        texts=st.lists(
            st.lists(short_words, min_size=1, max_size=4).map(" ".join),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_reciprocal_subset_of_plain(self, texts):
        plain = IncrementalMetaBlocking(
            keys_for=TokenBlocking().keys_for, k=2, filtering_ratio=1.0
        )
        reciprocal = IncrementalMetaBlocking(
            keys_for=TokenBlocking().keys_for,
            k=2,
            reciprocal=True,
            filtering_ratio=1.0,
        )
        for position, text in enumerate(texts):
            profile = EntityProfile.from_dict(f"p{position}", {"t": text})
            plain_ids = {c.entity_id for c in plain.add(profile)}
            reciprocal_ids = {c.entity_id for c in reciprocal.add(profile)}
            assert reciprocal_ids <= plain_ids


class TestClassifierProperties:
    @given(
        offset=st.floats(min_value=1.5, max_value=5.0),
        count=st.integers(min_value=10, max_value=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_separable_data_is_learned(self, offset, count):
        import numpy as np

        rng = np.random.default_rng(0)
        negatives = rng.normal(0.0, 0.3, size=(count, 2))
        positives = rng.normal(offset, 0.3, size=(count, 2))
        X = np.vstack([negatives, positives])
        y = np.array([0.0] * count + [1.0] * count)
        model = LogisticRegressionClassifier(iterations=250).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9
