"""Integration tests: the paper's qualitative findings on synthetic data.

These run the full pipeline (Token Blocking -> Block Purging -> Block
Filtering -> weighting -> pruning) on a mid-sized synthetic dataset and
assert the *relative* behaviour the paper reports: who prunes deeper, who
keeps recall, how the families order on precision.
"""

from __future__ import annotations

import pytest

from repro import BlockPurging, TokenBlocking, evaluate
from repro.blockprocessing.iterative_blocking import IterativeBlocking
from repro.core import GraphFreeMetaBlocking, meta_block
from repro.core.edge_weighting import OptimizedEdgeWeighting
from repro.datasets.synthetic import DatasetScale, movies_dataset
from repro.matching import JaccardMatcher, OracleMatcher, connected_components, resolve


@pytest.fixture(scope="module")
def dataset():
    return movies_dataset(
        DatasetScale(size1=350, size2=300, num_duplicates=270), seed=21
    )


@pytest.fixture(scope="module")
def blocks(dataset):
    return BlockPurging().process(TokenBlocking().build(dataset))


@pytest.fixture(scope="module")
def reports(dataset, blocks):
    """Quality report of every pruning algorithm at JS weighting."""
    out = {}
    for name in ("CEP", "CNP", "WEP", "WNP", "ReCNP", "ReWNP", "RcCNP", "RcWNP"):
        result = meta_block(blocks, scheme="JS", algorithm=name)
        out[name] = evaluate(
            result.comparisons,
            dataset.ground_truth,
            reference_cardinality=blocks.cardinality,
        )
    return out


class TestPaperFindings:
    def test_input_blocks_are_high_recall_low_precision(self, dataset, blocks):
        report = evaluate(
            blocks,
            dataset.ground_truth,
            reference_cardinality=dataset.brute_force_comparisons,
        )
        assert report.pc > 0.95
        assert report.pq < 0.05

    def test_every_algorithm_boosts_precision(self, dataset, blocks, reports):
        baseline = evaluate(blocks, dataset.ground_truth).pq
        for name, report in reports.items():
            assert report.pq > baseline, name

    def test_weight_based_schemes_keep_high_recall(self, reports):
        # Effectiveness-intensive family: PC >= 0.95 (paper Section 6.3).
        for name in ("WEP", "WNP", "ReWNP"):
            assert reports[name].pc >= 0.9, name

    def test_node_centric_retains_more_than_edge_centric(self, reports):
        # Within each family, node-centric pruning trades more retained
        # comparisons for recall robustness (paper Section 6.3).
        assert reports["CNP"].cardinality > reports["CEP"].cardinality
        assert reports["WNP"].cardinality > reports["WEP"].cardinality

    def test_redefined_improves_precision_at_same_recall(self, reports):
        assert reports["ReCNP"].pc == pytest.approx(reports["CNP"].pc, abs=1e-9)
        assert reports["ReCNP"].cardinality <= reports["CNP"].cardinality
        assert reports["ReWNP"].pc == pytest.approx(reports["WNP"].pc, abs=1e-9)
        assert reports["ReWNP"].cardinality <= reports["WNP"].cardinality

    def test_reciprocal_has_best_precision_of_family(self, reports):
        assert reports["RcCNP"].pq >= reports["ReCNP"].pq >= reports["CNP"].pq
        assert reports["RcWNP"].pq >= reports["ReWNP"].pq >= reports["WNP"].pq

    def test_node_centric_more_robust_than_edge_centric(self, reports):
        # CNP retains more comparisons than CEP for higher/equal recall.
        assert reports["CNP"].pc >= reports["CEP"].pc


class TestBlockFilteringIntegration:
    def test_filtering_shrinks_graph_cheaply(self, dataset, blocks):
        unfiltered = meta_block(
            blocks, scheme="JS", algorithm="WEP", block_filtering_ratio=None
        )
        filtered = meta_block(
            blocks, scheme="JS", algorithm="WEP", block_filtering_ratio=0.8
        )
        quality_unfiltered = evaluate(
            unfiltered.comparisons, dataset.ground_truth
        )
        quality_filtered = evaluate(filtered.comparisons, dataset.ground_truth)
        # Paper Table 3: WEP's retained comparisons drop by >60% under
        # filtering while recall drops by <3%.
        assert (
            quality_filtered.cardinality < 0.7 * quality_unfiltered.cardinality
        )
        assert quality_filtered.pc > 0.93 * quality_unfiltered.pc


class TestBaselinesIntegration:
    def test_graph_free_ratios_meet_their_recall_targets(self, dataset, blocks):
        # The two tuned ratios exist to serve the two application types:
        # PC >= 0.8 for r=0.25 and PC >= 0.95 for r=0.55 (paper Section 6.4).
        efficiency = GraphFreeMetaBlocking.for_efficiency().process(blocks)
        effectiveness = GraphFreeMetaBlocking.for_effectiveness().process(blocks)
        assert evaluate(efficiency, dataset.ground_truth).pc >= 0.8
        assert evaluate(effectiveness, dataset.ground_truth).pc >= 0.95
        # Both vastly out-precision the raw blocks.
        baseline = evaluate(blocks, dataset.ground_truth).pq
        assert evaluate(efficiency, dataset.ground_truth).pq > 10 * baseline

    def test_iterative_blocking_keeps_recall_with_more_comparisons(
        self, dataset, blocks
    ):
        iterative = IterativeBlocking(OracleMatcher(dataset.ground_truth)).process(
            blocks, dataset.ground_truth
        )
        reciprocal = meta_block(blocks, scheme="JS", algorithm="RcWNP").comparisons
        rc_quality = evaluate(reciprocal, dataset.ground_truth)
        # Iterative Blocking only saves the comparisons resolved by match
        # propagation: near-perfect recall, but an order of magnitude more
        # executed comparisons than Reciprocal WNP (paper Section 6.4).
        assert iterative.recall(dataset.ground_truth) >= rc_quality.pc - 0.05
        assert iterative.executed_comparisons > 5 * rc_quality.cardinality

    def test_clean_clean_ideal_saves_comparisons(self, dataset, blocks):
        matcher = OracleMatcher(dataset.ground_truth)
        plain = IterativeBlocking(matcher).process(blocks, dataset.ground_truth)
        ideal = IterativeBlocking(matcher, clean_clean_ideal=True).process(
            blocks, dataset.ground_truth
        )
        assert ideal.executed_comparisons < plain.executed_comparisons
        assert ideal.recall(dataset.ground_truth) > 0.9


class TestMatchingIntegration:
    def test_jaccard_matcher_resolves_restructured_blocks(self, dataset, blocks):
        result = meta_block(blocks, scheme="JS", algorithm="RcWNP")
        resolution = resolve(
            result.comparisons, JaccardMatcher(dataset, threshold=0.25)
        )
        detected = dataset.ground_truth.detected_in(resolution.matches)
        # Real matching is imperfect, but the pipeline should surface a
        # sizable share of the duplicates.
        assert len(detected) > 0.5 * len(dataset.ground_truth)

    def test_dirty_er_clustering(self, dataset):
        dirty = dataset.to_dirty()
        dirty_blocks = BlockPurging().process(TokenBlocking().build(dirty))
        result = meta_block(dirty_blocks, scheme="JS", algorithm="RcWNP")
        resolution = resolve(result.comparisons, OracleMatcher(dirty.ground_truth))
        clusters = connected_components(resolution.matches, dirty.num_entities)
        assert clusters
        assert all(len(cluster) >= 2 for cluster in clusters)
