"""Fused weight+prune kernels, degree-aware chunking and phase timings.

The fused paths gather each CSR neighbourhood exactly once and serve both
the criterion phase and the retention phase from that single gather. They
are an execution detail, so every test here asserts exact equivalence with
the legacy two-stream paths — the same invariant the ``prune_per_edge``
shims anchor for the batched paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.edge_weighting import (
    OptimizedEdgeWeighting,
    OriginalEdgeWeighting,
)
from repro.core.execution import ExecutionConfig
from repro.core.parallel import (
    ParallelMetaBlockingExecutor,
    partition_ranges,
    partition_ranges_by_mass,
    resolve_workers,
)
from repro.core.pipeline import meta_block
from repro.core.pruning import PRUNING_ALGORITHMS
from repro.core.vectorized import (
    VectorizedEdgeWeighting,
    weight_and_prune_chunks,
)
from repro.datamodel.blocks import Block, BlockCollection
from repro.datamodel.sinks import InMemorySink

NODE_ORDERED_BACKENDS = {
    "optimized": OptimizedEdgeWeighting,
    "vectorized": VectorizedEdgeWeighting,
}

#: The algorithms with a fused single-gather path (plus their reciprocal
#: subclasses, which inherit it).
FUSED_ALGORITHMS = ("WEP", "ReCNP", "ReWNP", "RcCNP", "RcWNP")


@pytest.fixture(scope="module")
def dirty_blocks():
    """Unilateral blocks with a hub entity, a singleton and an empty block."""
    blocks = BlockCollection(
        [
            Block("a", [0, 1, 2]),
            Block("b", [0, 3]),
            Block("c", [1, 2, 4, 5]),
            Block("d", [0, 2, 3, 5, 6]),
            Block("e", [4, 6]),
            Block("solo", [7]),
            Block("ghost", []),
        ],
        num_entities=8,
    )
    return blocks.sorted_by_cardinality()


def _with_fused(algorithm: str, fused: bool):
    pruning = PRUNING_ALGORITHMS[algorithm]()
    pruning.fused = fused
    return pruning


class TestFusedChunks:
    def test_chunks_reassemble_the_emitted_stream(self, dirty_blocks):
        """Concatenated fused chunks == the legacy edge-batch stream."""
        weighting = VectorizedEdgeWeighting(dirty_blocks, "JS")
        legacy = [
            (batch.sources.copy(), batch.targets.copy(), batch.weights.copy())
            for batch in weighting.iter_edge_batches(3)
        ]
        expected_sources = np.concatenate([s for s, _, _ in legacy])
        expected_targets = np.concatenate([t for _, t, _ in legacy])
        expected_weights = np.concatenate([w for _, _, w in legacy])
        fused_chunks = list(
            weight_and_prune_chunks(weighting, weighting.nodes(), 3)
        )
        sources = np.concatenate([f.emitted.sources for f in fused_chunks])
        targets = np.concatenate([f.emitted.targets for f in fused_chunks])
        weights = np.concatenate([f.emitted.weights for f in fused_chunks])
        np.testing.assert_array_equal(sources, expected_sources)
        np.testing.assert_array_equal(targets, expected_targets)
        # Bit-identical, not approximately equal.
        np.testing.assert_array_equal(weights, expected_weights)

    def test_group_carries_full_neighborhoods(self, dirty_blocks):
        """The phase-1 view holds every neighbour, not just emitted ones."""
        weighting = VectorizedEdgeWeighting(dirty_blocks, "JS")
        for fused in weight_and_prune_chunks(weighting, weighting.nodes(), 2):
            for position, entity in enumerate(fused.group.entities):
                start = fused.group.offsets[position]
                stop = fused.group.offsets[position + 1]
                neighbors, weights = weighting.neighborhood_arrays(int(entity))
                np.testing.assert_array_equal(
                    fused.group.neighbors[start:stop], neighbors
                )
                np.testing.assert_array_equal(
                    fused.group.weights[start:stop], weights
                )

    def test_emitted_node_sums_match_mean_edge_weight(self, dirty_blocks):
        from repro.core.pruning.base import mean_edge_weight

        weighting = VectorizedEdgeWeighting(dirty_blocks, "JS")
        sums = []
        count = 0
        for fused in weight_and_prune_chunks(weighting, weighting.nodes(), 2):
            node_sums, edges = fused.emitted_node_sums()
            if edges:
                sums.append(node_sums)
                count += edges
        threshold = float(np.sum(np.concatenate(sums))) / count
        assert threshold == mean_edge_weight(weighting)


@pytest.mark.parametrize("scheme", ["JS", "EJS", "ARCS"])
@pytest.mark.parametrize("algorithm", FUSED_ALGORITHMS)
class TestFusedMatchesLegacy:
    """Mirrors the prune_per_edge shim assertions for the fused kernels."""

    @pytest.mark.parametrize("backend", sorted(NODE_ORDERED_BACKENDS))
    def test_exact_pairs_and_order(
        self, dirty_blocks, scheme, algorithm, backend
    ):
        weighting = NODE_ORDERED_BACKENDS[backend](dirty_blocks, scheme)
        fused = _with_fused(algorithm, True).prune(weighting).pairs
        legacy = _with_fused(algorithm, False).prune(weighting).pairs
        assert fused == legacy

    def test_tiny_chunks(self, dirty_blocks, scheme, algorithm):
        weighting = VectorizedEdgeWeighting(dirty_blocks, scheme)
        fused = _with_fused(algorithm, True)
        fused.chunk_size = 2
        legacy = _with_fused(algorithm, False)
        legacy.chunk_size = 2
        assert fused.prune(weighting).pairs == legacy.prune(weighting).pairs

    def test_per_edge_shim_agrees(self, dirty_blocks, scheme, algorithm):
        weighting = VectorizedEdgeWeighting(dirty_blocks, scheme)
        pruning = PRUNING_ALGORITHMS[algorithm]()
        assert (
            pruning.prune(weighting).pairs
            == pruning.prune_per_edge(weighting).pairs
        )


class TestFusedGates:
    def test_block_ordered_backend_skips_fusion(self, dirty_blocks):
        """Original's iter_edges is block-ordered, so fusing would reorder
        the emitted pairs; the gate must route it to the legacy path."""
        weighting = OriginalEdgeWeighting(dirty_blocks, "JS")
        assert not weighting.node_ordered_edge_stream
        pruning = PRUNING_ALGORITHMS["ReWNP"]()
        assert not pruning._use_fused_path(weighting, InMemorySink())
        reference = sorted(
            PRUNING_ALGORITHMS["ReWNP"]()
            .prune(VectorizedEdgeWeighting(dirty_blocks, "JS"))
            .pairs
        )
        assert sorted(pruning.prune(weighting).pairs) == reference

    def test_node_ordered_flag_defaults_true(self, dirty_blocks):
        for cls in NODE_ORDERED_BACKENDS.values():
            assert cls(dirty_blocks, "JS").node_ordered_edge_stream


class TestMassPartitioning:
    def test_hub_nodes_get_small_ranges(self):
        masses = np.array([10, 1, 1, 1, 1, 1, 1, 10], dtype=np.float64)
        assert partition_ranges_by_mass(masses, 3) == [(0, 1), (1, 7), (7, 8)]

    def test_exact_non_empty_cover(self):
        rng = np.random.default_rng(7)
        for count in (1, 2, 5, 17, 100):
            masses = rng.integers(0, 50, size=count).astype(np.float64)
            for chunks in (1, 2, 3, count, count + 4):
                ranges = partition_ranges_by_mass(masses, chunks)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == count
                for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                    assert stop == start
                assert all(stop > start for start, stop in ranges)
                assert len(ranges) == min(chunks, count)

    def test_zero_mass_falls_back_to_even_split(self):
        masses = np.zeros(10)
        assert partition_ranges_by_mass(masses, 3) == partition_ranges(10, 3)

    def test_empty_input(self):
        assert partition_ranges_by_mass(np.empty(0), 3) == []


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_zero_honours_cpu_affinity(self, monkeypatch):
        import repro.core.parallel as parallel_module

        monkeypatch.setattr(
            parallel_module.os, "sched_getaffinity", lambda pid: {0, 1, 2}
        )
        assert resolve_workers(0) == 3
        assert resolve_workers(None) == 3

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        import repro.core.parallel as parallel_module

        def unavailable(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(
            parallel_module.os, "sched_getaffinity", unavailable
        )
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 5)
        assert resolve_workers(0) == 5


class TestPhaseTimings:
    def test_executor_accumulates_buckets(self, dirty_blocks):
        executor = ParallelMetaBlockingExecutor(
            VectorizedEdgeWeighting(dirty_blocks, "JS"),
            workers=2,
            chunks=3,
            backend="threads",
        )
        try:
            executor.prune(PRUNING_ALGORITHMS["ReWNP"]())
            timings = executor.timings
        finally:
            executor.close()
        assert set(timings) == {"dispatch", "weight", "prune", "merge"}
        assert all(value >= 0.0 for value in timings.values())
        assert timings["weight"] + timings["prune"] > 0.0

    def test_timings_reset_per_prune(self, dirty_blocks):
        executor = ParallelMetaBlockingExecutor(
            VectorizedEdgeWeighting(dirty_blocks, "JS"),
            workers=2,
            chunks=3,
            backend="in-process",
        )
        try:
            executor.prune(PRUNING_ALGORITHMS["WEP"]())
            first = dict(executor.timings)
            executor.prune(PRUNING_ALGORITHMS["WEP"]())
            second = dict(executor.timings)
        finally:
            executor.close()
        # Each run starts from zero, so the second is not a running total.
        assert second["weight"] + second["prune"] < (
            first["weight"] + first["prune"]
        ) * 10 + 1.0

    def test_meta_block_surfaces_phase_timings(self, dirty_blocks):
        result = meta_block(
            dirty_blocks,
            algorithm="ReCNP",
            execution=ExecutionConfig(
                parallel=2, parallel_backend="in-process"
            ),
        )
        assert set(result.phase_timings) == {
            "dispatch",
            "weight",
            "prune",
            "merge",
        }
        serial = meta_block(dirty_blocks, algorithm="ReCNP")
        assert serial.phase_timings == {}


class TestAutoChunkingPipeline:
    def test_auto_and_even_chunking_retain_identical_pairs(
        self, dirty_blocks
    ):
        auto = meta_block(
            dirty_blocks,
            algorithm="RcWNP",
            execution=ExecutionConfig(
                parallel=2, parallel_backend="threads"
            ),
        )
        even = meta_block(
            dirty_blocks,
            algorithm="RcWNP",
            execution=ExecutionConfig(
                parallel=2, parallel_backend="threads", chunk_size=4
            ),
        )
        serial = meta_block(dirty_blocks, algorithm="RcWNP")
        assert list(auto.comparisons) == list(serial.comparisons)
        assert list(even.comparisons) == list(serial.comparisons)
