"""Unit tests for the Entity Index and the LeCoBI condition."""

from repro.blockprocessing.entity_index import EntityIndex
from repro.datamodel.blocks import Block, BlockCollection


def _collection() -> BlockCollection:
    return BlockCollection(
        [
            Block("b0", (0, 1)),
            Block("b1", (1, 2)),
            Block("b2", (0, 1, 2)),
        ],
        num_entities=4,
    )


class TestEntityIndex:
    def test_block_lists_sorted_ascending(self):
        index = EntityIndex(_collection())
        assert index.block_list(0) == [0, 2]
        assert index.block_list(1) == [0, 1, 2]
        assert index.block_list(2) == [1, 2]
        assert index.block_list(3) == []

    def test_num_blocks_of(self):
        index = EntityIndex(_collection())
        assert index.num_blocks_of(1) == 3
        assert index.num_blocks_of(3) == 0

    def test_placed_entities(self):
        index = EntityIndex(_collection())
        assert index.placed_entities() == [0, 1, 2]

    def test_common_blocks(self):
        index = EntityIndex(_collection())
        assert index.common_blocks(0, 1) == [0, 2]
        assert index.common_blocks(0, 2) == [2]
        assert index.common_blocks(0, 3) == []

    def test_least_common_block(self):
        index = EntityIndex(_collection())
        assert index.least_common_block(0, 1) == 0
        assert index.least_common_block(1, 2) == 1
        assert index.least_common_block(0, 3) is None

    def test_lecobi(self):
        index = EntityIndex(_collection())
        # (0,1) co-occur in blocks 0 and 2; only block 0 passes LeCoBI.
        assert index.satisfies_lecobi(0, 1, 0)
        assert not index.satisfies_lecobi(0, 1, 2)

    def test_inverse_cardinalities(self):
        index = EntityIndex(_collection())
        assert index.inverse_cardinalities == [1.0, 1.0, 1.0 / 3.0]

    def test_unilateral_has_no_second_side(self):
        index = EntityIndex(_collection())
        assert not index.is_bilateral
        assert not index.in_second_collection(0)


class TestEntityIndexCSR:
    """The CSR arrays are consistent with the list-returning accessors."""

    def test_indptr_and_indices_agree_with_block_lists(self):
        index = EntityIndex(_collection())
        for entity in range(4):
            start, stop = index.indptr[entity], index.indptr[entity + 1]
            assert index.block_indices[start:stop].tolist() == index.block_list(
                entity
            )
            assert index.block_slice(entity).tolist() == index.block_list(entity)

    def test_block_counts_is_indptr_diff(self):
        import numpy as np

        index = EntityIndex(_collection())
        assert index.block_counts.tolist() == [2, 3, 2, 0]
        assert np.array_equal(index.block_counts, np.diff(index.indptr))

    def test_member_csr_round_trips_blocks(self):
        blocks = _collection()
        index = EntityIndex(blocks)
        for position, block in enumerate(blocks):
            start = index.member_indptr1[position]
            stop = index.member_indptr1[position + 1]
            assert index.members1[start:stop].tolist() == list(block.entities1)

    def test_unilateral_side2_aliases_side1(self):
        index = EntityIndex(_collection())
        assert index.members2 is index.members1
        assert index.member_indptr2 is index.member_indptr1

    def test_inverse_cardinality_array_matches_list(self):
        index = EntityIndex(_collection())
        assert index.inverse_cardinality_array.tolist() == (
            index.inverse_cardinalities
        )

    def test_empty_collection(self):
        index = EntityIndex(BlockCollection([], 0))
        assert index.indptr.tolist() == [0]
        assert index.block_indices.tolist() == []
        assert index.placed_entities() == []

    def test_entities_without_blocks(self):
        index = EntityIndex(BlockCollection([Block("a", (1, 3))], 6))
        assert index.block_list(0) == []
        assert index.block_list(1) == [0]
        assert index.placed_entities() == [1, 3]


class TestEntityIndexBilateral:
    def _bilateral(self) -> BlockCollection:
        return BlockCollection(
            [
                Block("b0", (0, 1), (2, 3)),
                Block("b1", (0,), (3,)),
            ],
            num_entities=4,
        )

    def test_second_side_detection(self):
        index = EntityIndex(self._bilateral())
        assert index.is_bilateral
        assert not index.in_second_collection(0)
        assert index.in_second_collection(2)
        assert index.in_second_collection(3)

    def test_cooccurring_picks_opposite_side(self):
        index = EntityIndex(self._bilateral())
        assert index.cooccurring(0, 0) == (2, 3)
        assert index.cooccurring(3, 0) == (0, 1)

    def test_lecobi_bilateral(self):
        index = EntityIndex(self._bilateral())
        assert index.satisfies_lecobi(0, 3, 0)
        assert not index.satisfies_lecobi(0, 3, 1)
