"""Cross-backend pruned-output equivalence sweep.

The three weighting backends compute the same weighted blocking graph, so
every pruning algorithm must retain the same comparison set on each of them,
for every weighting scheme. The fixture is a bilateral (Clean-Clean)
collection that deliberately includes a singleton block (one side empty) and
an empty block, the degenerate shapes most likely to diverge between the
per-comparison, ScanCount and CSR code paths.
"""

from __future__ import annotations

import pytest

from repro.core.edge_weighting import (
    OptimizedEdgeWeighting,
    OriginalEdgeWeighting,
)
from repro.core.parallel import (
    ParallelMetaBlockingExecutor,
    fork_available,
    spawn_available,
)
from repro.core.pruning import PRUNING_ALGORITHMS
from repro.core.vectorized import VectorizedEdgeWeighting
from repro.core.weights import WEIGHTING_SCHEMES
from repro.datamodel.blocks import Block, BlockCollection

BACKENDS = {
    "optimized": OptimizedEdgeWeighting,
    "original": OriginalEdgeWeighting,
    "vectorized": VectorizedEdgeWeighting,
}


@pytest.fixture(scope="module")
def bilateral_blocks():
    """Clean-Clean blocks over ids 0-4 (side 1) and 5-9 (side 2).

    Includes a singleton block (``solo``: one member, empty second side), a
    block with an empty first side (``ghost``), and an entity (4) whose only
    block yields no comparison.
    """
    blocks = BlockCollection(
        [
            Block("a", [0, 1], [5, 6]),
            Block("b", [0, 2], [6, 7]),
            Block("c", [1, 2, 3], [5, 8]),
            Block("d", [3], [8, 9]),
            Block("e", [0, 1, 2, 3], [5, 6, 7, 9]),
            Block("solo", [4], []),
            Block("ghost", [], [9]),
        ],
        num_entities=10,
    )
    return blocks.sorted_by_cardinality()


@pytest.mark.parametrize("scheme", sorted(WEIGHTING_SCHEMES))
@pytest.mark.parametrize("algorithm", sorted(PRUNING_ALGORITHMS))
class TestPrunedOutputAgreement:
    def test_backends_agree(self, bilateral_blocks, scheme, algorithm):
        pruning = PRUNING_ALGORITHMS[algorithm]()
        results = {
            name: sorted(
                pruning.prune(cls(bilateral_blocks, scheme)).pairs
            )
            for name, cls in BACKENDS.items()
        }
        assert results["original"] == results["optimized"]
        assert results["vectorized"] == results["optimized"]

    def test_per_edge_shim_agrees_across_backends(
        self, bilateral_blocks, scheme, algorithm
    ):
        pruning = PRUNING_ALGORITHMS[algorithm]()
        reference = sorted(
            pruning.prune(
                OptimizedEdgeWeighting(bilateral_blocks, scheme)
            ).pairs
        )
        for cls in BACKENDS.values():
            shim = pruning.prune_per_edge(cls(bilateral_blocks, scheme))
            assert sorted(shim.pairs) == reference


@pytest.fixture(scope="module")
def parallel_executors(bilateral_blocks):
    """Cache of two-worker executors keyed by (weighting name, pool backend).

    One persistent executor per cell keeps the spawn-pool startup cost to a
    single pool per weighting backend instead of one per test.
    """
    cache: dict[tuple[str, str], ParallelMetaBlockingExecutor] = {}

    def get(name: str, pool_backend: str) -> ParallelMetaBlockingExecutor:
        key = (name, pool_backend)
        if key not in cache:
            cache[key] = ParallelMetaBlockingExecutor(
                BACKENDS[name](bilateral_blocks, "JS"),
                workers=2,
                chunks=3,
                backend=pool_backend,
            )
        return cache[key]

    yield get
    for executor in cache.values():
        executor.close()


@pytest.mark.parametrize(
    "pool_backend",
    [
        "threads",
        pytest.param(
            "fork",
            marks=pytest.mark.skipif(
                not fork_available(), reason="fork start method unavailable"
            ),
        ),
        pytest.param(
            "shm-spawn",
            marks=pytest.mark.skipif(
                not spawn_available(), reason="spawn start method unavailable"
            ),
        ),
    ],
)
@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("algorithm", sorted(PRUNING_ALGORITHMS))
class TestParallelBackendsAgree:
    """Every weighting backend × algorithm cell, two workers, both pools."""

    def test_two_workers_match_serial(
        self, parallel_executors, bilateral_blocks, backend, algorithm, pool_backend
    ):
        serial = sorted(
            PRUNING_ALGORITHMS[algorithm]()
            .prune(BACKENDS[backend](bilateral_blocks, "JS"))
            .pairs
        )
        executor = parallel_executors(backend, pool_backend)
        assert executor.backend == pool_backend
        parallel = executor.prune(PRUNING_ALGORITHMS[algorithm]())
        assert sorted(parallel.pairs) == serial


@pytest.mark.parametrize("scheme", sorted(WEIGHTING_SCHEMES))
def test_weights_agree_on_degenerate_blocks(bilateral_blocks, scheme):
    reference = OptimizedEdgeWeighting(bilateral_blocks, scheme)
    expected = {
        (left, right): weight for left, right, weight in reference.iter_edges()
    }
    for cls in (OriginalEdgeWeighting, VectorizedEdgeWeighting):
        weighting = cls(bilateral_blocks, scheme)
        got = {
            (left, right): weight
            for left, right, weight in weighting.iter_edges()
        }
        assert got.keys() == expected.keys()
        for pair, weight in expected.items():
            assert got[pair] == pytest.approx(weight, rel=1e-12)
