"""Protocol-level tests for the ``repro serve`` daemon."""

import json
import socket
import threading
import time

import pytest

from repro.blocking import TokenBlocking
from repro.client import ConnectFailed, ResolverClient, ServerError
from repro.core.execution import ExecutionConfig
from repro.core.faults import Fault, injected_faults
from repro.datamodel.profiles import EntityProfile
from repro.incremental import IncrementalMetaBlocking
from repro.serve import BackgroundServer, ResolverServer
from repro.serve.protocol import (
    ERR_BAD_FRAME,
    ERR_FRAME_TOO_LARGE,
    ERR_INVALID_REQUEST,
    ERR_OVERLOADED,
    ERR_UNKNOWN_VERB,
    decode_frame,
    encode_frame,
    profile_to_wire,
)


def _profile(identifier: str, text: str) -> EntityProfile:
    return EntityProfile.from_dict(identifier, {"text": text})


def _resolver(**kwargs) -> IncrementalMetaBlocking:
    defaults = dict(keys_for=TokenBlocking().keys_for, scheme="CBS", k=3)
    defaults.update(kwargs)
    return IncrementalMetaBlocking(**defaults)


def _corpus(n: int) -> "list[EntityProfile]":
    words = ["alpha", "beta", "gamma", "delta", "epsilon"]
    return [
        _profile(f"p{i}", f"{words[i % 5]} {words[(i // 2) % 5]} item{i % 7}")
        for i in range(n)
    ]


@pytest.fixture
def server(tmp_path):
    """A running daemon on a Unix socket, no coalescing."""
    instance = ResolverServer(
        _resolver(), path=tmp_path / "er.sock", flush_size=1
    )
    with BackgroundServer(instance) as background:
        yield background


@pytest.fixture
def client(server):
    with ResolverClient(server.address, timeout=10) as connected:
        yield connected


def _raw_connection(address) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10)
    sock.connect(str(address))
    return sock


def _roundtrip_raw(sock: socket.socket, payload: dict) -> dict:
    sock.sendall(encode_frame(payload))
    return _read_raw(sock)


def _read_raw(sock: socket.socket) -> dict:
    buffer = b""
    while not buffer.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection")
        buffer += chunk
    return decode_frame(buffer)


class TestVerbs:
    def test_ping(self, client):
        result = client.ping()
        assert result["pong"] is True
        assert result["epoch"] == 0

    def test_single_upsert_matches_in_process(self, client):
        mirror = _resolver()
        for i, profile in enumerate(_corpus(12)):
            entity_id, candidates = client.upsert(profile)
            assert entity_id == i
            assert candidates == mirror.add(profile)

    def test_batch_upsert_matches_in_process(self, client):
        mirror = _resolver()
        profiles = _corpus(10)
        entity_ids, candidate_lists = client.upsert_many(profiles)
        assert entity_ids == list(range(10))
        assert candidate_lists == mirror.add_batch(profiles)

    def test_upsert_accepts_wire_profiles(self, client):
        entity_id, _ = client.upsert(profile_to_wire(_profile("a", "x y")))
        assert entity_id == 0
        assert client.stats()["profiles"] == 1

    def test_query(self, client):
        profiles = _corpus(8)
        client.upsert_many(profiles)
        mirror = _resolver()
        mirror.add_batch(profiles)
        assert client.query(3) == mirror.query(3)
        assert client.query(3, k=1) == mirror.query(3, k=1)

    def test_query_unknown_entity(self, client):
        client.upsert(_profile("a", "x"))
        with pytest.raises(ServerError) as excinfo:
            client.query(99)
        assert excinfo.value.code == ERR_INVALID_REQUEST

    def test_query_invalid_k(self, client):
        client.upsert(_profile("a", "x"))
        with pytest.raises(ServerError) as excinfo:
            client.query(0, k=0)
        assert excinfo.value.code == ERR_INVALID_REQUEST

    def test_candidates_matches_in_process(self, client):
        profiles = _corpus(15)
        client.upsert_many(profiles)
        mirror = _resolver()
        mirror.add_batch(profiles)
        for algorithm in ("CNP", "WNP", "RcCNP"):
            assert client.candidate_pairs(algorithm) == [
                tuple(pair) for pair in mirror.candidate_pairs(algorithm)
            ]

    def test_candidates_unknown_algorithm(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.candidate_pairs("WEP")
        assert excinfo.value.code == ERR_INVALID_REQUEST

    def test_compact(self, client):
        client.upsert_many(_corpus(6))
        result = client.compact()
        assert result["compactions"] == 1
        assert client.stats()["delta_assignments"] == 0

    def test_stats_shape(self, client):
        client.upsert(_profile("a", "x y z"))
        client.query(0)
        stats = client.stats()
        assert stats["profiles"] == 1
        assert stats["pending"] == 0
        assert stats["scheme"] == "CBS"
        assert stats["total_requests"] == 2
        assert stats["requests"] == {"upsert": 1, "query": 1}
        assert stats["qps"] > 0
        assert set(stats["latency_ms"]) == {"upsert", "query"}
        for bucket in stats["latency_ms"].values():
            assert bucket["p50"] <= bucket["p99"]
        assert json.dumps(stats)  # the whole payload is JSON-serialisable

    def test_stats_execution_round_trips(self, tmp_path):
        execution = ExecutionConfig(parallel=2, parallel_backend="threads")
        instance = ResolverServer(
            _resolver(execution=execution),
            path=tmp_path / "er.sock",
        )
        with BackgroundServer(instance) as background:
            with ResolverClient(background.address, timeout=10) as connected:
                wire = connected.stats()["execution"]
        assert ExecutionConfig.from_dict(wire) == execution

    def test_shutdown(self, tmp_path):
        instance = ResolverServer(_resolver(), path=tmp_path / "er.sock")
        with BackgroundServer(instance) as background:
            address = background.address
            with ResolverClient(address, timeout=10) as connected:
                connected.upsert(_profile("a", "x"))
                result = connected.shutdown()
            assert result["profiles"] == 1
            assert result["compacted"] is False
            background.stop()  # idempotent after a client shutdown
            assert not (tmp_path / "er.sock").exists()
            with pytest.raises(ConnectFailed):
                ResolverClient(
                    address, timeout=1, connect_retries=0
                ).ping()

    def test_shutdown_with_compact(self, server):
        with ResolverClient(server.address, timeout=10) as connected:
            connected.upsert(_profile("a", "x y"))
            result = connected.shutdown(compact=True)
        assert result["compacted"] is True
        assert result["compactions"] == 1


class TestProtocolEdges:
    def test_malformed_frame_keeps_connection(self, server):
        with _raw_connection(server.address) as sock:
            sock.sendall(b"this is not json\n")
            response = _read_raw(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == ERR_BAD_FRAME
            # The stream is still aligned: a valid request works.
            response = _roundtrip_raw(sock, {"id": 7, "verb": "ping"})
            assert response["ok"] is True
            assert response["id"] == 7

    def test_non_object_frame(self, server):
        with _raw_connection(server.address) as sock:
            response = _roundtrip_raw(sock, [1, 2, 3])
            assert response["error"]["code"] == ERR_BAD_FRAME

    def test_unknown_verb(self, server):
        with _raw_connection(server.address) as sock:
            response = _roundtrip_raw(sock, {"id": 1, "verb": "resolve"})
            assert response["error"]["code"] == ERR_UNKNOWN_VERB
            assert response["id"] == 1

    def test_missing_fields(self, server):
        with _raw_connection(server.address) as sock:
            response = _roundtrip_raw(sock, {"id": 1, "verb": "query"})
            assert response["error"]["code"] == ERR_INVALID_REQUEST
            response = _roundtrip_raw(
                sock, {"id": 2, "verb": "upsert", "profile": "nope"}
            )
            assert response["error"]["code"] == ERR_INVALID_REQUEST

    def test_oversized_frame_closes_connection(self, tmp_path):
        instance = ResolverServer(
            _resolver(), path=tmp_path / "er.sock", max_frame_bytes=4096
        )
        with BackgroundServer(instance) as background:
            with _raw_connection(background.address) as sock:
                huge = {"id": 1, "verb": "upsert", "junk": "x" * 10000}
                response = _roundtrip_raw(sock, huge)
                assert response["error"]["code"] == ERR_FRAME_TOO_LARGE
                assert sock.recv(1) == b""  # server closed its end
            # The daemon itself survives oversized frames.
            with ResolverClient(background.address, timeout=10) as connected:
                assert connected.ping()["pong"] is True

    def test_blank_lines_are_skipped(self, server):
        with _raw_connection(server.address) as sock:
            sock.sendall(b"\n\n")
            response = _roundtrip_raw(sock, {"id": 3, "verb": "ping"})
            assert response["id"] == 3


class TestCoalescing:
    def test_interval_flush_answers_parked_upserts(self, tmp_path):
        instance = ResolverServer(
            _resolver(),
            path=tmp_path / "er.sock",
            flush_size=64,
            flush_interval=0.02,
        )
        with BackgroundServer(instance) as background:
            with ResolverClient(background.address, timeout=10) as connected:
                # The buffer never fills (64); only the idle timer can
                # answer, so each response proves the deadline flush works.
                for i, profile in enumerate(_corpus(3)):
                    entity_id, _ = connected.upsert(profile)
                    assert entity_id == i
                assert connected.stats()["profiles"] == 3

    def test_concurrent_clients_coalesce(self, tmp_path):
        instance = ResolverServer(
            _resolver(),
            path=tmp_path / "er.sock",
            flush_size=4,
            flush_interval=5.0,  # too long: only a full buffer flushes
        )
        profiles = _corpus(4)
        results: dict = {}

        def upsert_one(position: int) -> None:
            with ResolverClient(instance.path, timeout=10) as connected:
                results[position] = connected.upsert(profiles[position])

        with BackgroundServer(instance):
            threads = [
                threading.Thread(target=upsert_one, args=(i,))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
        assert sorted(entity_id for entity_id, _ in results.values()) == [
            0, 1, 2, 3,
        ]
        assert len(instance.resolver) == 4
        assert instance.resolver.pending == 0

    def test_barrier_verbs_flush_parked(self, tmp_path):
        instance = ResolverServer(
            _resolver(),
            path=tmp_path / "er.sock",
            flush_size=100,
            flush_interval=5.0,
        )
        with BackgroundServer(instance) as background:
            arrived = []

            def upsert_slow() -> None:
                with ResolverClient(background.address, timeout=10) as other:
                    arrived.append(other.upsert(_profile("slow", "x y")))

            thread = threading.Thread(target=upsert_slow)
            thread.start()
            deadline = time.monotonic() + 5
            while (
                instance.resolver.pending == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            with ResolverClient(background.address, timeout=10) as connected:
                # query is a barrier: the parked upsert commits first.
                assert connected.query(0) == []
            thread.join(timeout=10)
        assert arrived == [(0, [])]


class TestDisconnects:
    def test_graceful_disconnect_mid_batch(self, tmp_path):
        instance = ResolverServer(
            _resolver(),
            path=tmp_path / "er.sock",
            flush_size=100,
            flush_interval=0.02,
        )
        with BackgroundServer(instance) as background:
            sock = _raw_connection(background.address)
            sock.sendall(
                encode_frame(
                    {
                        "id": 1,
                        "verb": "upsert",
                        "profile": profile_to_wire(_profile("a", "x y")),
                    }
                )
            )
            sock.close()  # walk away without reading the response
            deadline = time.monotonic() + 5
            while len(instance.resolver) == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            # The parked upsert still committed server-side.
            with ResolverClient(background.address, timeout=10) as connected:
                assert connected.stats()["profiles"] == 1

    def test_hard_disconnect_mid_batch(self):
        # TCP + SO_LINGER(0) sends an RST: the handler sees a reset, not a
        # clean EOF, and the daemon must shrug it off.
        instance = ResolverServer(
            _resolver(), host="127.0.0.1", flush_size=100, flush_interval=0.02
        )
        with BackgroundServer(instance) as background:
            host, port = background.address
            sock = socket.create_connection((host, port), timeout=10)
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),
            )
            sock.sendall(
                encode_frame(
                    {
                        "id": 1,
                        "verb": "upsert",
                        "profile": profile_to_wire(_profile("a", "x y")),
                    }
                )
            )
            sock.close()
            deadline = time.monotonic() + 5
            while len(instance.resolver) == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            with ResolverClient((host, port), timeout=10) as connected:
                assert connected.stats()["profiles"] == 1
                connected.upsert(_profile("b", "x z"))
                assert connected.stats()["profiles"] == 2


class TestBackpressure:
    def test_overloaded_when_queue_full(self, tmp_path):
        instance = ResolverServer(
            _resolver(), path=tmp_path / "er.sock", queue_limit=1
        )
        with injected_faults(
            Fault(op="delay", task="serve:compact", seconds=0.4)
        ):
            with BackgroundServer(instance) as background:
                slow = _raw_connection(background.address)
                slow.sendall(encode_frame({"id": 1, "verb": "compact"}))
                time.sleep(0.05)  # let the dispatcher enter the slow verb
                fast = _raw_connection(background.address)
                # First ping occupies the single queue slot; pings after it
                # must be refused while the dispatcher is busy.
                fast.sendall(encode_frame({"id": 2, "verb": "ping"}))
                overload = _raw_connection(background.address)
                response = _roundtrip_raw(
                    overload, {"id": 3, "verb": "ping"}
                )
                assert response["error"]["code"] == ERR_OVERLOADED
                # The queued ping and the slow compact both complete.
                assert _read_raw(fast)["ok"] is True
                assert _read_raw(slow)["ok"] is True
                slow.close()
                fast.close()
                overload.close()
        assert instance.stats()["overloaded"] == 1

    def test_client_retries_overloaded(self, tmp_path):
        instance = ResolverServer(
            _resolver(), path=tmp_path / "er.sock", queue_limit=1
        )
        with injected_faults(
            Fault(op="delay", task="serve:compact", seconds=0.3)
        ):
            with BackgroundServer(instance) as background:
                slow = _raw_connection(background.address)
                slow.sendall(encode_frame({"id": 1, "verb": "compact"}))
                time.sleep(0.05)
                filler = _raw_connection(background.address)
                filler.sendall(encode_frame({"id": 2, "verb": "ping"}))
                # The SDK sees 'overloaded', backs off, and succeeds once
                # the dispatcher drains.
                with ResolverClient(
                    background.address,
                    timeout=10,
                    retry_backoff=0.1,
                    request_retries=8,
                ) as connected:
                    assert connected.ping()["pong"] is True
                assert _read_raw(filler)["ok"] is True
                assert _read_raw(slow)["ok"] is True
                slow.close()
                filler.close()
        assert instance.stats()["overloaded"] >= 1


class TestShutdownSemantics:
    def test_shutdown_flushes_parked_upserts(self, tmp_path):
        instance = ResolverServer(
            _resolver(),
            path=tmp_path / "er.sock",
            flush_size=100,
            flush_interval=5.0,
        )
        with BackgroundServer(instance) as background:
            arrived = []

            def upsert_parked() -> None:
                with ResolverClient(background.address, timeout=10) as other:
                    arrived.append(other.upsert(_profile("a", "x y")))

            thread = threading.Thread(target=upsert_parked)
            thread.start()
            deadline = time.monotonic() + 5
            while (
                instance.resolver.pending == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            with ResolverClient(background.address, timeout=10) as connected:
                result = connected.shutdown()
            thread.join(timeout=10)
            assert result["flushed"] == 1
            assert result["profiles"] == 1
            assert arrived == [(0, [])]

    def test_requests_after_shutdown_are_rejected(self, tmp_path):
        instance = ResolverServer(_resolver(), path=tmp_path / "er.sock")
        with BackgroundServer(instance) as background:
            with ResolverClient(background.address, timeout=10) as connected:
                connected.shutdown()
            with pytest.raises(ConnectFailed):
                ResolverClient(
                    background.address, timeout=1, connect_retries=0
                ).ping()
