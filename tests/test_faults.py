"""Fault tolerance: supervision, retries, degradation, checkpoint-resume.

The injection harness (:mod:`repro.core.faults`) drives every scenario
deterministically: faults are keyed on the chunk's *attempt number*, so a
``kill`` fault fires on the first attempt and the retry succeeds without
any shared mutable state between processes. The resume scenarios run the
interrupted half in a real subprocess that hard-exits (``os._exit``)
mid-adoption — the same shape as a SIGKILL or OOM kill — and assert the
resumed run's output is bit-identical to an uninterrupted serial run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro import BlockPurging, TokenBlocking
from repro.core import ExecutionConfig, meta_block, resume_run
from repro.core.edge_weighting import OptimizedEdgeWeighting
from repro.core.faults import (
    FAULTS_ENV,
    RETRYABLE_FAILURES,
    ChunkTimeout,
    Fault,
    FaultPlan,
    FaultToleranceError,
    InjectedFault,
    RetriesExhausted,
    SpillCorrupted,
    WorkerCrashed,
    active_plan,
    clear_faults,
    injected_faults,
    install_faults,
    leak_shm_segment,
    truncate_shard,
)
from repro.core.parallel import (
    ParallelMetaBlockingExecutor,
    fork_available,
    spawn_available,
)
from repro.core.pruning import CardinalityEdgePruning
from repro.core.weights import get_scheme
from repro.datamodel.sinks import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    SpillSink,
    read_run_checkpoint,
    sweep_stale_runs,
)
from repro.datasets.synthetic import DatasetScale, bibliographic_dataset
from repro.utils.shm import (
    attach_segment,
    list_segments,
    pid_alive,
    segment_owner_pid,
    sweep_stale_segments,
)


def pool_backends() -> list[str]:
    backends = []
    if fork_available():
        backends.append("fork")
    if spawn_available():
        backends.append("shm-spawn")
    return backends


def all_backends() -> list[str]:
    return pool_backends() + ["in-process"]


@pytest.fixture(autouse=True)
def _no_fault_leak():
    """No test may leave a fault plan installed (module global or env)."""
    yield
    clear_faults()


def _fault_config(backend: str, **overrides) -> ExecutionConfig:
    settings = {
        "parallel": 2,
        "parallel_backend": backend,
        "chunks": 4,
        "backoff": 0.01,
    }
    settings.update(overrides)
    return ExecutionConfig(**settings)


@pytest.fixture(scope="module")
def serial_wnp(small_clean_blocks):
    result = meta_block(small_clean_blocks, "JS", "WNP")
    return list(result.comparisons.pairs)


class TestTaxonomy:
    def test_hierarchy(self):
        for exc in (WorkerCrashed, ChunkTimeout, SpillCorrupted, RetriesExhausted):
            assert issubclass(exc, FaultToleranceError)
            assert issubclass(exc, RuntimeError)
        assert RETRYABLE_FAILURES == (WorkerCrashed, ChunkTimeout)
        assert not issubclass(InjectedFault, FaultToleranceError)

    def test_fault_validates_site_and_op(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            Fault(site="nope")
        with pytest.raises(ValueError, match="unknown fault op"):
            Fault(op="nope")

    def test_matches_chunk_window(self):
        fault = Fault(op="kill", chunk=2, task="wnp", attempts=2)
        assert fault.matches_chunk("_chunk_original_wnp", 2, 0)
        assert fault.matches_chunk("_chunk_original_wnp", 2, 1)
        assert not fault.matches_chunk("_chunk_original_wnp", 2, 2)
        assert not fault.matches_chunk("_chunk_original_wnp", 3, 0)
        assert not fault.matches_chunk("_chunk_phase2", 2, 0)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                Fault(op="kill", chunk=1),
                Fault(site="adopt", op="exit", after=3),
                Fault(op="delay", seconds=0.5, task="wep"),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_install_mirrors_into_environment(self):
        plan = FaultPlan((Fault(op="kill", chunk=0),))
        install_faults(plan)
        try:
            assert FaultPlan.from_json(os.environ[FAULTS_ENV]) == plan
            assert active_plan() == plan
        finally:
            clear_faults()
        assert FAULTS_ENV not in os.environ
        assert active_plan() is None

    def test_plan_read_back_from_environment(self, monkeypatch):
        # A worker that never called install_faults sees the inherited env.
        plan = FaultPlan((Fault(op="error", chunk=7),))
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        assert active_plan() == plan

    def test_context_manager_cleans_up(self):
        with injected_faults(Fault(op="kill")) as plan:
            assert active_plan() == plan
        assert active_plan() is None


class TestSupervisedRetries:
    @pytest.mark.parametrize("backend", all_backends())
    def test_worker_kill_is_retried(
        self, small_clean_blocks, serial_wnp, backend, shm_leak_check
    ):
        with injected_faults(Fault(op="kill", chunk=0, task="wnp")):
            result = meta_block(
                small_clean_blocks,
                "JS",
                "WNP",
                execution=_fault_config(backend),
            )
        assert list(result.comparisons.pairs) == serial_wnp
        assert result.fault_stats["worker_crashes"] >= 1
        assert result.fault_stats["retries"] >= 1

    @pytest.mark.parametrize("backend", all_backends())
    def test_chunk_timeout_is_retried(
        self, small_clean_blocks, serial_wnp, backend, shm_leak_check
    ):
        # The pool backends really stall a worker past the deadline; the
        # in-process backend simulates the timeout by raising it directly.
        with injected_faults(
            Fault(op="delay", seconds=30.0, chunk=0, task="wnp")
        ):
            result = meta_block(
                small_clean_blocks,
                "JS",
                "WNP",
                execution=_fault_config(backend, chunk_timeout=1.0),
            )
        assert list(result.comparisons.pairs) == serial_wnp
        assert result.fault_stats["chunk_timeouts"] >= 1
        assert result.fault_stats["retries"] >= 1

    @pytest.mark.parametrize("backend", all_backends())
    def test_kill_plus_timeout_completes_everywhere(
        self, small_clean_blocks, serial_wnp, backend, shm_leak_check
    ):
        # The acceptance scenario: one worker kill AND one chunk timeout in
        # the same run, on every backend, still bit-identical to serial.
        with injected_faults(
            Fault(op="kill", chunk=0, task="wnp"),
            Fault(op="delay", seconds=30.0, chunk=3, task="wnp"),
        ):
            result = meta_block(
                small_clean_blocks,
                "JS",
                "WNP",
                execution=_fault_config(backend, chunk_timeout=1.5),
            )
        assert list(result.comparisons.pairs) == serial_wnp
        stats = result.fault_stats
        assert stats["worker_crashes"] >= 1
        assert stats["chunk_timeouts"] >= 1
        assert stats["retries"] >= 2

    def test_deterministic_error_is_not_retried(self, small_clean_blocks):
        with injected_faults(Fault(op="error", chunk=0, task="wnp")):
            with pytest.raises(InjectedFault):
                meta_block(
                    small_clean_blocks,
                    "JS",
                    "WNP",
                    execution=_fault_config("in-process"),
                )

    def test_retries_exhausted_in_process(self, small_clean_blocks):
        # in-process is the bottom of the degradation ladder: a chunk that
        # keeps failing there surfaces as RetriesExhausted.
        with injected_faults(
            Fault(op="kill", chunk=0, task="wnp", attempts=99)
        ):
            with pytest.raises(RetriesExhausted):
                meta_block(
                    small_clean_blocks,
                    "JS",
                    "WNP",
                    execution=_fault_config("in-process", max_retries=1),
                )

    @pytest.mark.skipif(not fork_available(), reason="fork unavailable")
    def test_degrades_to_in_process(
        self, small_clean_blocks, serial_wnp, shm_leak_check
    ):
        # attempts=2 with max_retries=1: both fork attempts die, the
        # executor degrades, and the in-process attempt (attempt index 2)
        # is past the fault's window and succeeds.
        with injected_faults(
            Fault(op="kill", chunk=0, task="wnp", attempts=2)
        ):
            with pytest.warns(RuntimeWarning, match="degrading"):
                result = meta_block(
                    small_clean_blocks,
                    "JS",
                    "WNP",
                    execution=_fault_config("fork", max_retries=1),
                )
        assert list(result.comparisons.pairs) == serial_wnp
        assert result.fault_stats["degraded"] == ["in-process"]

    def test_clean_parallel_run_reports_zero_counters(
        self, small_clean_blocks, shm_leak_check
    ):
        result = meta_block(
            small_clean_blocks,
            "JS",
            "WNP",
            execution=_fault_config(all_backends()[0]),
        )
        stats = result.fault_stats
        assert stats["retries"] == 0
        assert stats["worker_crashes"] == 0
        assert stats["chunk_timeouts"] == 0
        assert stats["resumed_chunks"] == 0
        assert stats["degraded"] == []

    def test_serial_run_has_empty_fault_stats(self, small_clean_blocks):
        assert meta_block(small_clean_blocks, "JS", "WNP").fault_stats == {}


# -- checkpoint / resume ------------------------------------------------------


def _resume_blocks():
    """Deterministic blocks rebuilt identically in parent and subprocess."""
    dataset = bibliographic_dataset(
        DatasetScale(size1=120, size2=300, num_duplicates=100), seed=11
    )
    return BlockPurging().process(TokenBlocking().build(dataset))


def _interrupted_run(spill_dir: str, after: int) -> None:
    """Subprocess body: spill a parallel run, hard-exit mid-adoption."""
    install_faults(
        FaultPlan((Fault(site="adopt", op="exit", after=after),))
    )
    backend = "fork" if fork_available() else "shm-spawn"
    meta_block(
        _resume_blocks(),
        "JS",
        "WNP",
        execution=ExecutionConfig(
            parallel=2,
            parallel_backend=backend,
            chunks=6,
            spill_dir=spill_dir,
            memory_budget=4096,
        ),
    )
    raise SystemExit("the injected adoption fault never fired")


def _run_interrupted(spill_dir: Path, after: int = 2) -> Path:
    """Run ``_interrupted_run`` in a subprocess; return its run directory."""
    context = multiprocessing.get_context("spawn")
    process = context.Process(
        target=_interrupted_run, args=(str(spill_dir), after)
    )
    process.start()
    process.join(180)
    if process.is_alive():  # pragma: no cover - hang safety net
        process.kill()
        process.join(10)
        pytest.fail("interrupted run timed out")
    assert process.exitcode == 70, "the owner should hard-exit mid-adoption"
    # A hard-killed owner on the shm-spawn backend never unlinks its
    # segments — reclaim them the way an operator would (`repro clean`).
    sweep_stale_segments()
    runs = list(spill_dir.glob("run-*"))
    assert len(runs) == 1
    return runs[0]


@pytest.mark.skipif(not spawn_available(), reason="spawn start method unavailable")
class TestCheckpointResume:
    @pytest.fixture(scope="class")
    def serial_pairs(self):
        result = meta_block(_resume_blocks(), "JS", "WNP")
        return list(result.comparisons.pairs)

    def test_interrupted_run_resumes_bit_identical(
        self, tmp_path, serial_pairs, shm_leak_check
    ):
        run_dir = _run_interrupted(tmp_path / "spill")
        assert (run_dir / CHECKPOINT_NAME).is_file()
        assert not (run_dir / MANIFEST_NAME).exists()
        checkpoint = read_run_checkpoint(run_dir)
        assert len(checkpoint["chunks"]) == 2
        assert checkpoint["config"]["algorithm"] == "WNP"

        resumed = resume_run(_resume_blocks(), run_dir)
        assert list(resumed.comparisons) == serial_pairs
        assert resumed.fault_stats["resumed_chunks"] == 2
        assert (run_dir / MANIFEST_NAME).is_file()
        assert not (run_dir / CHECKPOINT_NAME).exists()
        resumed.comparisons.release()
        assert not run_dir.exists()

    def test_corrupted_shard_is_reexecuted(
        self, tmp_path, serial_pairs, shm_leak_check
    ):
        run_dir = _run_interrupted(tmp_path / "spill")
        checkpoint = read_run_checkpoint(run_dir)
        truncate_shard(run_dir / checkpoint["chunks"][0]["file"])

        resumed = resume_run(_resume_blocks(), run_dir)
        assert list(resumed.comparisons) == serial_pairs
        # The torn shard's chunk was invalidated and re-run.
        assert resumed.fault_stats["resumed_chunks"] == 1
        resumed.comparisons.release()

    def test_signature_mismatch_raises(self, tmp_path, shm_leak_check):
        run_dir = _run_interrupted(tmp_path / "spill")
        checkpoint_path = run_dir / CHECKPOINT_NAME
        state = json.loads(checkpoint_path.read_text())
        state["signature"]["chunks"] = 99
        checkpoint_path.write_text(json.dumps(state))
        with pytest.raises(SpillCorrupted, match="signature"):
            resume_run(_resume_blocks(), run_dir)
        # A usage error must not destroy the interrupted run's artifacts.
        assert checkpoint_path.is_file()

    def test_resume_from_config_field(
        self, tmp_path, serial_pairs, shm_leak_check
    ):
        # The low-level path: resume_from on the ExecutionConfig instead of
        # the resume_run convenience wrapper.
        run_dir = _run_interrupted(tmp_path / "spill")
        resumed = meta_block(
            _resume_blocks(),
            "JS",
            "WNP",
            execution=ExecutionConfig(
                parallel=2, chunks=6, resume_from=run_dir
            ),
        )
        assert list(resumed.comparisons) == serial_pairs
        assert resumed.fault_stats["resumed_chunks"] >= 1
        resumed.comparisons.release()


class TestResumeValidation:
    def test_resume_requires_checkpoint(self, tmp_path):
        run_dir = tmp_path / "run-1-aa"
        run_dir.mkdir()
        with pytest.raises(ValueError, match="no checkpoint"):
            SpillSink.resume(run_dir)

    def test_resume_rejects_missing_directory(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            SpillSink.resume(tmp_path / "run-gone")

    def test_resume_rejects_finished_run(self, tmp_path):
        run_dir = tmp_path / "run-1-bb"
        run_dir.mkdir()
        (run_dir / CHECKPOINT_NAME).write_text("{}")
        (run_dir / MANIFEST_NAME).write_text("{}")
        with pytest.raises(ValueError, match="already finalized"):
            SpillSink.resume(run_dir)

    def test_resume_rejects_unknown_checkpoint_version(self, tmp_path):
        run_dir = tmp_path / "run-1-cc"
        run_dir.mkdir()
        (run_dir / CHECKPOINT_NAME).write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="checkpoint version"):
            SpillSink.resume(run_dir)

    def test_resume_requires_parallel_execution(self, small_clean_blocks, tmp_path):
        run_dir = tmp_path / "run-1-dd"
        run_dir.mkdir()
        (run_dir / CHECKPOINT_NAME).write_text(
            json.dumps({"version": 1, "signature": None, "config": None, "chunks": []})
        )
        with pytest.raises(ValueError, match="parallel"):
            meta_block(
                small_clean_blocks,
                "JS",
                "WNP",
                execution=ExecutionConfig(resume_from=run_dir),
            )

    def test_cep_resume_is_rejected(self, example_blocks, tmp_path):
        run_dir = tmp_path / "run-1-ee"
        run_dir.mkdir()
        (run_dir / CHECKPOINT_NAME).write_text(
            json.dumps({"version": 1, "signature": None, "config": None, "chunks": []})
        )
        sink = SpillSink.resume(run_dir)
        weighting = OptimizedEdgeWeighting(example_blocks, get_scheme("JS"))
        executor = ParallelMetaBlockingExecutor(weighting, workers=2)
        try:
            with pytest.raises(ValueError, match="CEP"):
                executor.prune(CardinalityEdgePruning(), sink=sink)
        finally:
            executor.close()
        # The usage error must not destroy the checkpoint directory.
        assert (run_dir / CHECKPOINT_NAME).is_file()


# -- stale-artifact sweeps (repro clean) --------------------------------------


class TestSweeps:
    def test_sweeps_segment_of_dead_owner(self):
        name = leak_shm_segment()
        assert name in list_segments()
        owner = segment_owner_pid(name)
        assert owner is not None and not pid_alive(owner)
        swept = sweep_stale_segments()
        assert name in swept
        assert name not in list_segments()

    def test_dry_run_leaves_segment(self):
        name = leak_shm_segment()
        try:
            assert name in sweep_stale_segments(dry_run=True)
            assert name in list_segments()
        finally:
            segment = attach_segment(name)
            segment.unlink()
            segment.close()

    def test_live_owner_segment_is_kept(self):
        name = leak_shm_segment(pid=os.getpid())
        try:
            assert name not in sweep_stale_segments(dry_run=True)
        finally:
            segment = attach_segment(name)
            segment.unlink()
            segment.close()

    def test_sweeps_orphaned_run_directory(self, tmp_path):
        dead = tmp_path / "run-4194304-feed"  # pid far beyond pid_max
        dead.mkdir()
        (dead / "chunk-0.npy").write_bytes(b"torn")
        finished = tmp_path / "run-4194305-cafe"
        finished.mkdir()
        (finished / MANIFEST_NAME).write_text("{}")
        alive = tmp_path / f"run-{os.getpid()}-beef"
        alive.mkdir()

        assert sweep_stale_runs(tmp_path, dry_run=True) == [dead]
        assert dead.exists()
        assert sweep_stale_runs(tmp_path) == [dead]
        assert not dead.exists()
        assert finished.exists()
        assert alive.exists()

    def test_missing_spill_dir_is_empty_sweep(self, tmp_path):
        assert sweep_stale_runs(tmp_path / "nope") == []
