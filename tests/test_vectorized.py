"""Tests for the numpy-vectorized weighting backend."""

import numpy as np
import pytest

from repro.core.edge_weighting import OptimizedEdgeWeighting
from repro.core.pruning import PRUNING_ALGORITHMS
from repro.core.vectorized import VectorizedEdgeWeighting
from repro.core.weights import WEIGHTING_SCHEMES
from repro.core.pipeline import meta_block
from repro.datamodel.blocks import Block, BlockCollection


def _edges(weighting):
    return {(left, right): weight for left, right, weight in weighting.iter_edges()}


@pytest.mark.parametrize("scheme", sorted(WEIGHTING_SCHEMES))
class TestAgreesWithOptimized:
    def test_paper_example(self, example_blocks, scheme):
        vectorized = _edges(VectorizedEdgeWeighting(example_blocks, scheme))
        optimized = _edges(OptimizedEdgeWeighting(example_blocks, scheme))
        assert vectorized.keys() == optimized.keys()
        for edge, weight in vectorized.items():
            assert weight == pytest.approx(optimized[edge], abs=1e-12)

    def test_dirty_synthetic(self, tiny_dirty_blocks, scheme):
        vectorized = _edges(VectorizedEdgeWeighting(tiny_dirty_blocks, scheme))
        optimized = _edges(OptimizedEdgeWeighting(tiny_dirty_blocks, scheme))
        assert vectorized.keys() == optimized.keys()
        for edge, weight in vectorized.items():
            assert weight == pytest.approx(optimized[edge], abs=1e-9)

    def test_clean_clean_synthetic(self, small_clean_blocks, scheme):
        vectorized = _edges(VectorizedEdgeWeighting(small_clean_blocks, scheme))
        optimized = _edges(OptimizedEdgeWeighting(small_clean_blocks, scheme))
        assert vectorized.keys() == optimized.keys()
        for edge, weight in vectorized.items():
            assert weight == pytest.approx(optimized[edge], abs=1e-9)

    def test_neighborhoods_agree(self, example_blocks, scheme):
        vectorized = VectorizedEdgeWeighting(example_blocks, scheme)
        optimized = OptimizedEdgeWeighting(example_blocks, scheme)
        for entity in vectorized.nodes():
            left = dict(vectorized.neighborhood(entity))
            right = dict(optimized.neighborhood(entity))
            assert left.keys() == right.keys()
            for other, weight in left.items():
                assert weight == pytest.approx(right[other], abs=1e-12)


class TestWeightArrayConsistency:
    @pytest.mark.parametrize("scheme", sorted(WEIGHTING_SCHEMES))
    def test_array_matches_scalar(self, scheme):
        instance = WEIGHTING_SCHEMES[scheme]
        rng = np.random.default_rng(5)
        count = 50
        common = rng.integers(0, 6, count)
        arcs = rng.random(count)
        bi = common + rng.integers(1, 10, count)
        bj = common + rng.integers(1, 10, count)
        di = rng.integers(1, 20, count)
        dj = rng.integers(1, 20, count)
        vector = instance.weight_array(common, arcs, bi, bj, di, dj, 100, 500)
        for position in range(count):
            scalar = instance.weight(
                int(common[position]),
                float(arcs[position]),
                int(bi[position]),
                int(bj[position]),
                int(di[position]),
                int(dj[position]),
                100,
                500,
            )
            assert vector[position] == pytest.approx(scalar, abs=1e-12)


class TestPruningOnVectorized:
    @pytest.mark.parametrize("name", sorted(PRUNING_ALGORITHMS))
    def test_identical_pruning_output(self, example_blocks, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        vectorized = algorithm.prune(VectorizedEdgeWeighting(example_blocks, "JS"))
        optimized = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        assert sorted(vectorized.pairs) == sorted(optimized.pairs)

    def test_via_pipeline_backend(self, small_dirty_blocks):
        vectorized = meta_block(
            small_dirty_blocks, scheme="JS", algorithm="RcWNP", backend="vectorized"
        )
        optimized = meta_block(
            small_dirty_blocks, scheme="JS", algorithm="RcWNP", backend="optimized"
        )
        assert sorted(vectorized.comparisons.pairs) == sorted(
            optimized.comparisons.pairs
        )


class TestDegenerate:
    def test_empty_collection(self):
        weighting = VectorizedEdgeWeighting(BlockCollection([], 0), "JS")
        assert list(weighting.iter_edges()) == []
        assert weighting.graph_size == 0

    def test_entity_with_no_blocks(self):
        blocks = BlockCollection([Block("a", (0, 1))], num_entities=5)
        weighting = VectorizedEdgeWeighting(blocks, "JS")
        assert weighting.neighborhood(4) == []

    def test_graph_stats(self, example_blocks):
        weighting = VectorizedEdgeWeighting(example_blocks, "JS")
        assert weighting.graph_order == 6
        assert weighting.graph_size == 10
        assert weighting.degrees() == [2, 2, 5, 5, 3, 3]


class TestDefaultWeightArrayFallback:
    def test_x2_uses_base_class_fallback(self, example_blocks):
        # X2 defines no numpy override, so the vectorized backend exercises
        # WeightingScheme.weight_array's scalar-loop fallback; outputs must
        # still agree with the optimized backend.
        vectorized = _edges(VectorizedEdgeWeighting(example_blocks, "X2"))
        optimized = _edges(OptimizedEdgeWeighting(example_blocks, "X2"))
        assert vectorized.keys() == optimized.keys()
        for edge, weight in vectorized.items():
            assert weight == pytest.approx(optimized[edge], abs=1e-9)
