"""Unit tests for blocks, block collections and comparison collections."""

import pytest

from repro.datamodel.blocks import Block, BlockCollection, ComparisonCollection


class TestUnilateralBlock:
    def test_size_and_cardinality(self):
        block = Block("k", (1, 2, 3))
        assert block.size == 3
        assert block.cardinality == 3
        assert not block.is_bilateral

    def test_comparisons_canonical(self):
        block = Block("k", (3, 1, 2))
        assert set(block.comparisons()) == {(1, 2), (1, 3), (2, 3)}
        assert all(left < right for left, right in block.comparisons())

    def test_singleton_invalid(self):
        assert not Block("k", (5,)).is_valid

    def test_empty_invalid(self):
        assert not Block("k", ()).is_valid

    def test_without_entities(self):
        block = Block("k", (1, 2, 3)).without_entities({2})
        assert block.entities1 == (1, 3)


class TestBilateralBlock:
    def test_cardinality_is_cross_product(self):
        block = Block("k", (1, 2), (10, 11, 12))
        assert block.size == 5
        assert block.cardinality == 6
        assert block.is_bilateral

    def test_comparisons_cross_only(self):
        block = Block("k", (1, 2), (10,))
        assert set(block.comparisons()) == {(1, 10), (2, 10)}

    def test_one_sided_invalid(self):
        assert not Block("k", (1, 2), ()).is_valid
        assert not Block("k", (), (1, 2)).is_valid

    def test_all_entities(self):
        block = Block("k", (1,), (5,))
        assert block.all_entities == (1, 5)

    def test_without_entities_both_sides(self):
        block = Block("k", (1, 2), (5, 6)).without_entities({2, 5})
        assert block.entities1 == (1,)
        assert block.entities2 == (6,)

    def test_equality_and_hash(self):
        assert Block("k", (1,), (2,)) == Block("k", (1,), (2,))
        assert Block("k", (1,)) != Block("k", (1,), (2,))
        assert hash(Block("k", (1, 2))) == hash(Block("k", (1, 2)))


class TestBlockCollection:
    def _collection(self):
        return BlockCollection(
            [Block("a", (0, 1)), Block("b", (0, 1, 2)), Block("c", (3, 4))],
            num_entities=5,
        )

    def test_cardinality(self):
        assert self._collection().cardinality == 1 + 3 + 1

    def test_aggregate_size_and_bpe(self):
        collection = self._collection()
        assert collection.aggregate_size == 7
        assert collection.bpe == pytest.approx(7 / 5)

    def test_iter_comparisons_includes_redundant(self):
        comparisons = list(self._collection().iter_comparisons())
        assert comparisons.count((0, 1)) == 2

    def test_distinct_comparisons(self):
        assert self._collection().distinct_comparisons() == {
            (0, 1),
            (0, 2),
            (1, 2),
            (3, 4),
        }

    def test_entity_ids(self):
        assert self._collection().entity_ids() == {0, 1, 2, 3, 4}

    def test_block_assignments(self):
        assignments = self._collection().block_assignments()
        assert assignments[0] == 2
        assert assignments[3] == 1

    def test_sorted_by_cardinality_stable(self):
        ordered = self._collection().sorted_by_cardinality()
        assert [block.key for block in ordered] == ["a", "c", "b"]

    def test_only_valid(self):
        collection = BlockCollection(
            [Block("a", (0,)), Block("b", (1, 2))], num_entities=3
        )
        assert [b.key for b in collection.only_valid()] == ["b"]

    def test_negative_entities_rejected(self):
        with pytest.raises(ValueError):
            BlockCollection([], num_entities=-1)

    def test_is_bilateral(self):
        unilateral = BlockCollection([Block("a", (0, 1))], 2)
        bilateral = BlockCollection([Block("a", (0,), (1,))], 2)
        assert not unilateral.is_bilateral
        assert bilateral.is_bilateral


class TestComparisonCollection:
    def test_canonicalises_pairs(self):
        collection = ComparisonCollection([(5, 1), (1, 5)], num_entities=6)
        assert collection.pairs == [(1, 5), (1, 5)]
        assert collection.cardinality == 2
        assert collection.distinct_comparisons() == {(1, 5)}

    def test_entity_ids(self):
        collection = ComparisonCollection([(0, 3), (2, 4)], num_entities=5)
        assert collection.entity_ids() == {0, 2, 3, 4}

    def test_to_blocks_round_trip(self):
        collection = ComparisonCollection([(0, 1), (2, 3)], num_entities=4)
        blocks = collection.to_blocks()
        assert blocks.cardinality == 2
        assert blocks.distinct_comparisons() == {(0, 1), (2, 3)}

    def test_empty(self):
        collection = ComparisonCollection([], num_entities=0)
        assert collection.cardinality == 0
        assert list(collection) == []
