"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.cli import load_dataset, main
from repro.datasets import save_dataset_json
from repro.datasets.examples import paper_example_dataset
from repro.datasets.synthetic import DatasetScale, bibliographic_dataset


@pytest.fixture()
def dirty_dataset_path(tmp_path):
    path = tmp_path / "dirty.json"
    save_dataset_json(paper_example_dataset(), path)
    return str(path)


@pytest.fixture()
def clean_dataset_path(tmp_path):
    dataset = bibliographic_dataset(
        DatasetScale(size1=40, size2=90, num_duplicates=30), seed=4
    )
    path = tmp_path / "clean.json"
    save_dataset_json(dataset, path)
    return str(path)


class TestGenerate:
    def test_generates_clean_clean(self, tmp_path, capsys):
        output = tmp_path / "out.json"
        assert main(["generate", "bibliographic", str(output), "--seed", "1"]) == 0
        payload = json.loads(output.read_text())
        assert payload["task"] == "clean-clean"
        assert "wrote" in capsys.readouterr().out

    def test_generates_dirty(self, tmp_path):
        output = tmp_path / "out.json"
        assert main(
            ["generate", "movies", str(output), "--seed", "1", "--dirty"]
        ) == 0
        payload = json.loads(output.read_text())
        assert payload["task"] == "dirty"

    def test_rejects_unknown_flavor(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nope", str(tmp_path / "x.json")])


class TestLoadDataset:
    def test_sniffs_task(self, dirty_dataset_path, clean_dataset_path):
        assert not load_dataset(dirty_dataset_path).is_clean_clean
        assert load_dataset(clean_dataset_path).is_clean_clean


class TestProfile:
    def test_prints_statistics(self, dirty_dataset_path, capsys):
        # --no-purging keeps the example's "car" block (4 of 6 profiles,
        # which default purging would drop on so tiny a collection).
        assert main(["profile", dirty_dataset_path, "--no-purging"]) == 0
        out = capsys.readouterr().out
        assert "||B||  13" in out  # the worked example's 13 comparisons

    def test_purging_applied_by_default(self, dirty_dataset_path, capsys):
        assert main(["profile", dirty_dataset_path]) == 0
        out = capsys.readouterr().out
        assert "||B||  7" in out  # the oversized "car" block is purged

    def test_alternative_blocking(self, dirty_dataset_path, capsys):
        assert main(
            ["profile", dirty_dataset_path, "--blocking", "qgrams"]
        ) == 0
        assert "||B||" in capsys.readouterr().out


class TestMetablock:
    def test_default_run(self, clean_dataset_path, capsys):
        assert main(["metablock", clean_dataset_path]) == 0
        out = capsys.readouterr().out
        assert "PC=" in out and "overhead" in out

    def test_ratio_zero_disables_filtering(self, dirty_dataset_path, capsys):
        assert main(
            ["metablock", dirty_dataset_path, "--ratio", "0",
             "--algorithm", "WEP", "--scheme", "CBS"]
        ) == 0
        assert "r=off" in capsys.readouterr().out

    def test_writes_comparisons_csv(self, dirty_dataset_path, tmp_path, capsys):
        output = tmp_path / "pairs.csv"
        assert main(
            ["metablock", dirty_dataset_path, "--output", str(output),
             "--algorithm", "RcWNP", "--ratio", "0"]
        ) == 0
        with open(output, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["left_id", "right_id"]
        assert ["p1", "p3"] in rows  # the worked example's first duplicate

    def test_original_backend(self, dirty_dataset_path, capsys):
        assert main(
            ["metablock", dirty_dataset_path, "--backend", "original"]
        ) == 0
        assert "original weighting" in capsys.readouterr().out

    def test_parallel_workers(self, clean_dataset_path, capsys):
        assert main(
            ["metablock", clean_dataset_path, "--workers", "2",
             "--algorithm", "RcWNP"]
        ) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out and "PC=" in out

    def test_workers_match_serial_output(
        self, clean_dataset_path, tmp_path
    ):
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        assert main(
            ["metablock", clean_dataset_path, "--algorithm", "ReWNP",
             "--output", str(serial_csv)]
        ) == 0
        assert main(
            ["metablock", clean_dataset_path, "--algorithm", "ReWNP",
             "--workers", "2", "--output", str(parallel_csv)]
        ) == 0
        assert serial_csv.read_text() == parallel_csv.read_text()


class TestSweep:
    def test_prints_full_grid(self, dirty_dataset_path, capsys):
        assert main(["sweep", dirty_dataset_path, "--ratio", "0"]) == 0
        out = capsys.readouterr().out
        # 8 algorithms x 5 schemes = 40 result lines.
        result_lines = [
            line for line in out.splitlines()
            if any(line.startswith(a) for a in ("CEP", "CNP", "WEP", "WNP", "Re", "Rc"))
        ]
        assert len(result_lines) == 40


class TestGenerateProducts:
    def test_products_flavor(self, tmp_path):
        output = tmp_path / "products.json"
        assert main(["generate", "products", str(output), "--seed", "2"]) == 0
        payload = json.loads(output.read_text())
        assert payload["task"] == "clean-clean"
        assert payload["collection1"]["name"] == "shop-a"


class TestFaultToleranceFlags:
    def test_retry_flags_accepted(self, clean_dataset_path, capsys):
        assert main(
            ["metablock", clean_dataset_path, "--workers", "2",
             "--algorithm", "WNP", "--max-retries", "3",
             "--chunk-timeout", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out
        # A clean run reports no fault line.
        assert "faults:" not in out

    def test_injected_kill_reports_fault_stats(
        self, clean_dataset_path, capsys
    ):
        from repro.core.faults import Fault, injected_faults

        with injected_faults(Fault(op="kill", chunk=0, task="wnp")):
            assert main(
                ["metablock", clean_dataset_path, "--workers", "2",
                 "--algorithm", "WNP"]
            ) == 0
        out = capsys.readouterr().out
        assert "faults:" in out and "worker crashes" in out

    def test_resume_completes_interrupted_run(
        self, clean_dataset_path, tmp_path, capsys
    ):
        import os
        import subprocess
        import sys
        from pathlib import Path

        from repro.core.faults import FAULTS_ENV, Fault, FaultPlan

        spill_dir = tmp_path / "spill"
        plan = FaultPlan((Fault(site="adopt", op="exit", after=1),))
        env = dict(os.environ)
        env[FAULTS_ENV] = plan.to_json()
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        crashed = subprocess.run(
            [sys.executable, "-m", "repro", "metablock", clean_dataset_path,
             "--workers", "2", "--algorithm", "WNP",
             "--spill-dir", str(spill_dir), "--memory-budget", "4096"],
            env=env,
            capture_output=True,
            timeout=180,
        )
        assert crashed.returncode == 70, crashed.stderr.decode()
        runs = list(spill_dir.glob("run-*"))
        assert len(runs) == 1

        assert main(
            ["metablock", clean_dataset_path, "--resume", str(runs[0])]
        ) == 0
        out = capsys.readouterr().out
        assert "chunks resumed" in out
        assert "r=resumed" in out
        assert (runs[0] / "manifest.json").is_file()


class TestClean:
    def test_sweeps_stale_artifacts(self, tmp_path, capsys):
        from repro.core.faults import leak_shm_segment
        from repro.utils.shm import list_segments

        name = leak_shm_segment()
        dead_run = tmp_path / "run-4194304-dead"
        dead_run.mkdir()

        assert main(["clean", "--spill-dir", str(tmp_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert f"would remove shared-memory segment {name}" in out
        assert f"would remove spill run {dead_run}" in out
        assert name in list_segments() and dead_run.exists()

        assert main(["clean", "--spill-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"removed shared-memory segment {name}" in out
        assert name not in list_segments()
        assert not dead_run.exists()

    def test_nothing_to_clean(self, tmp_path, capsys):
        assert main(["clean", "--spill-dir", str(tmp_path)]) == 0
        assert "nothing to clean" in capsys.readouterr().out


class TestTimingsJson:
    def test_writes_timings_payload(self, clean_dataset_path, tmp_path, capsys):
        output = tmp_path / "timings.json"
        assert main(
            ["metablock", clean_dataset_path, "--algorithm", "CNP",
             "--timings-json", str(output)]
        ) == 0
        assert "wrote timings to" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["algorithm"] == "CNP"
        assert payload["effective_workers"] == 1
        assert payload["overhead_seconds"] >= 0
        assert "phase_timings" in payload and "fault_stats" in payload
        assert payload["retained_comparisons"] > 0

    def test_parallel_run_records_phase_timings(
        self, clean_dataset_path, tmp_path
    ):
        output = tmp_path / "timings.json"
        assert main(
            ["metablock", clean_dataset_path, "--algorithm", "WNP",
             "--workers", "2", "--timings-json", str(output)]
        ) == 0
        payload = json.loads(output.read_text())
        assert payload["effective_workers"] == 2
        assert set(payload["phase_timings"]) >= {"dispatch", "merge"}


class TestStream:
    def test_streams_dirty_dataset(self, dirty_dataset_path, capsys):
        assert main(
            ["stream", dirty_dataset_path, "--filtering-ratio", "1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "upserts" in out and "recall" in out

    def test_streams_clean_clean_with_compaction(
        self, clean_dataset_path, tmp_path, capsys
    ):
        compact_dir = tmp_path / "epochs"
        assert main(
            ["stream", clean_dataset_path, "--scheme", "CBS", "--k", "3",
             "--compact-ratio", "0.4", "--compact-dir", str(compact_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "recall" in out
        # 130 profiles x several tokens crosses the compaction floor, so at
        # least one epoch snapshot lands on disk.
        assert "compaction(s)" in out
        if "0 compaction(s)" not in out:
            assert list(compact_dir.glob("epoch-*"))

    def test_reciprocal_flag(self, dirty_dataset_path, capsys):
        assert main(
            ["stream", dirty_dataset_path, "--reciprocal", "--k", "2"]
        ) == 0
        assert "reciprocal=on" in capsys.readouterr().out


class TestCleanCompactDir:
    def test_sweeps_orphaned_epochs(self, tmp_path, capsys):
        (tmp_path / "epoch-000003.tmp-4194304").mkdir()  # dead owner pid
        (tmp_path / "epoch-000002").mkdir()  # manifest missing

        assert main(
            ["clean", "--compact-dir", str(tmp_path), "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("would remove compaction artifact") == 2
        assert (tmp_path / "epoch-000002").exists()

        assert main(["clean", "--compact-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("removed compaction artifact") == 2
        assert not (tmp_path / "epoch-000002").exists()
        assert not (tmp_path / "epoch-000003.tmp-4194304").exists()

    def test_keeps_healthy_epochs(self, tmp_path, capsys):
        from repro.blockprocessing import DeltaEntityIndex, latest_epoch

        index = DeltaEntityIndex()
        block = index.new_block()
        entity = index.new_entity()
        index.assign(entity, [block])
        index.compact(persist_dir=tmp_path)
        healthy = latest_epoch(tmp_path)

        assert main(["clean", "--compact-dir", str(tmp_path)]) == 0
        assert "nothing to clean" in capsys.readouterr().out
        assert healthy.exists()


class TestServeAndCall:
    def _wait_for(self, predicate, timeout=15.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.02)
        raise AssertionError("daemon did not become ready in time")

    def test_serve_call_roundtrip(self, tmp_path, dirty_dataset_path, capsys):
        import threading

        socket_path = tmp_path / "er.sock"
        exit_codes: "list[int]" = []
        daemon = threading.Thread(
            target=lambda: exit_codes.append(
                main(
                    ["serve", "--socket", str(socket_path), "--preload",
                     dirty_dataset_path, "--scheme", "CBS", "--k", "3",
                     "--batch-size", "4"]
                )
            )
        )
        daemon.start()
        try:
            self._wait_for(socket_path.exists)
            base = ["--socket", str(socket_path)]
            assert main(["call", "ping", *base]) == 0
            assert main(["call", "query", *base, "--entity-id", "0"]) == 0
            assert main(
                ["call", "upsert", *base, "--profile",
                 '{"identifier": "fresh", "attributes": {"name": "obama"}}']
            ) == 0
            assert main(["call", "stats", *base]) == 0
            assert main(["call", "shutdown", *base, "--compact"]) == 0
        finally:
            daemon.join(timeout=30)
        assert exit_codes == [0]
        out = capsys.readouterr().out
        assert "serving on" in out
        assert '"pong": true' in out
        assert '"candidates"' in out
        assert '"compacted": true' in out
        assert "served " in out and "requests" in out
        # The shutdown unlinked the socket: nothing leaked.
        assert not socket_path.exists()

    def test_call_requires_an_address(self, capsys):
        assert main(["call", "ping"]) == 2
        assert "give --socket PATH or --port N" in capsys.readouterr().err

    def test_call_reports_connect_failure(self, tmp_path, capsys):
        code = main(
            ["call", "ping", "--socket", str(tmp_path / "nowhere.sock")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_call_rejects_malformed_fields(self, tmp_path, capsys):
        code = main(
            ["call", "ping", "--socket", str(tmp_path / "er.sock"),
             "--fields", "{not json"]
        )
        assert code == 2
        assert "--fields is not valid JSON" in capsys.readouterr().err
