"""Unit tests for the synthetic dataset generators."""

import pytest

from repro import BlockPurging, TokenBlocking, evaluate
from repro.datasets.synthetic import (
    DEFAULT_SCALES,
    DatasetScale,
    bibliographic_dataset,
    infobox_dataset,
    movies_dataset,
    paper_benchmark_suite,
    random_dataset,
)

SMALL = DatasetScale(size1=80, size2=200, num_duplicates=60)


class TestDatasetScale:
    def test_rejects_too_many_duplicates(self):
        with pytest.raises(ValueError):
            DatasetScale(size1=5, size2=100, num_duplicates=10)

    def test_rejects_empty_collections(self):
        with pytest.raises(ValueError):
            DatasetScale(size1=0, size2=5, num_duplicates=0)

    def test_scaled(self):
        scale = DatasetScale(100, 200, 50).scaled(0.5)
        assert (scale.size1, scale.size2, scale.num_duplicates) == (50, 100, 25)

    def test_scaled_floors(self):
        scale = DatasetScale(10, 10, 5).scaled(0.01)
        assert scale.size1 >= 2 and scale.num_duplicates >= 1


class TestGeneratorContracts:
    @pytest.mark.parametrize(
        "generator", [bibliographic_dataset, movies_dataset, infobox_dataset]
    )
    def test_sizes_and_ground_truth(self, generator):
        dataset = generator(SMALL, seed=5)
        assert len(dataset.collection1) == SMALL.size1
        assert len(dataset.collection2) == SMALL.size2
        assert len(dataset.ground_truth) == SMALL.num_duplicates

    @pytest.mark.parametrize(
        "generator", [bibliographic_dataset, movies_dataset, infobox_dataset]
    )
    def test_deterministic(self, generator):
        first = generator(SMALL, seed=9)
        second = generator(SMALL, seed=9)
        assert first.ground_truth.pairs == second.ground_truth.pairs
        assert [p.identifier for p in first.collection1] == [
            p.identifier for p in second.collection1
        ]
        assert [p.attributes for p in first.collection2] == [
            p.attributes for p in second.collection2
        ]

    @pytest.mark.parametrize(
        "generator", [bibliographic_dataset, movies_dataset, infobox_dataset]
    )
    def test_different_seeds_differ(self, generator):
        first = generator(SMALL, seed=1)
        second = generator(SMALL, seed=2)
        assert [p.attributes for p in first.collection1] != [
            p.attributes for p in second.collection1
        ]

    def test_schema_heterogeneity(self):
        dataset = bibliographic_dataset(SMALL, seed=5)
        names1 = dataset.collection1.attribute_names
        names2 = dataset.collection2.attribute_names
        assert names1.isdisjoint(names2)

    def test_infobox_attribute_explosion(self):
        dataset = infobox_dataset(SMALL, seed=5)
        names = dataset.collection1.attribute_names | (
            dataset.collection2.attribute_names
        )
        assert len(names) > 100

    def test_movies_second_source_more_verbose(self):
        dataset = movies_dataset(SMALL, seed=5)
        assert (
            dataset.collection2.mean_name_value_pairs
            > dataset.collection1.mean_name_value_pairs
        )


class TestBlockingQualityOfGenerated:
    @pytest.mark.parametrize(
        "generator", [bibliographic_dataset, movies_dataset, infobox_dataset]
    )
    def test_token_blocking_has_high_recall(self, generator):
        dataset = generator(SMALL, seed=13)
        blocks = BlockPurging().process(TokenBlocking().build(dataset))
        report = evaluate(blocks, dataset.ground_truth)
        # The paper's datasets all exceed PC 0.98 under Token Blocking;
        # small samples wobble a bit more.
        assert report.pc > 0.9

    def test_duplicates_not_trivially_identical(self):
        dataset = bibliographic_dataset(SMALL, seed=13)
        identical = 0
        for left, right in dataset.ground_truth:
            values1 = set(dataset.profile(left).values())
            values2 = set(dataset.profile(right).values())
            if values1 == values2:
                identical += 1
        assert identical < len(dataset.ground_truth) / 2


class TestRandomDataset:
    def test_shape(self):
        dataset = random_dataset(num_entities=40, num_duplicates=10, seed=1)
        assert dataset.num_entities == 40
        assert len(dataset.ground_truth) == 10

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            random_dataset(num_entities=10, num_duplicates=8)

    def test_deterministic(self):
        first = random_dataset(seed=4)
        second = random_dataset(seed=4)
        assert [p.attributes for p in first.collection] == [
            p.attributes for p in second.collection
        ]


class TestBenchmarkSuite:
    def test_six_datasets(self):
        suite = paper_benchmark_suite(scale_factor=0.05)
        assert set(suite) == {"D1C", "D2C", "D3C", "D1D", "D2D", "D3D"}

    def test_dirty_versions_are_unions(self):
        suite = paper_benchmark_suite(scale_factor=0.05)
        for index in "123":
            clean = suite[f"D{index}C"]
            dirty = suite[f"D{index}D"]
            assert dirty.num_entities == clean.num_entities
            assert dirty.ground_truth.pairs == clean.ground_truth.pairs
            assert not dirty.is_clean_clean

    def test_default_scales_relative_shape(self):
        # D1 is skewed (|E2| >> |E1|), D2 nearly balanced, D3 the largest.
        d1, d2, d3 = (DEFAULT_SCALES[k] for k in ("D1", "D2", "D3"))
        assert d1.size2 > 2 * d1.size1
        assert d3.size1 + d3.size2 > d2.size1 + d2.size2


class TestProductsDataset:
    def test_sizes_and_ground_truth(self):
        from repro.datasets.synthetic import products_dataset

        dataset = products_dataset(SMALL, seed=5)
        assert len(dataset.collection1) == SMALL.size1
        assert len(dataset.collection2) == SMALL.size2
        assert len(dataset.ground_truth) == SMALL.num_duplicates

    def test_schema_heterogeneity(self):
        from repro.datasets.synthetic import products_dataset

        dataset = products_dataset(SMALL, seed=5)
        names1 = dataset.collection1.attribute_names
        names2 = dataset.collection2.attribute_names
        assert names1.isdisjoint(names2)

    def test_deterministic(self):
        from repro.datasets.synthetic import products_dataset

        first = products_dataset(SMALL, seed=9)
        second = products_dataset(SMALL, seed=9)
        assert [p.attributes for p in first.collection2] == [
            p.attributes for p in second.collection2
        ]

    def test_token_blocking_recall(self):
        from repro.datasets.synthetic import products_dataset

        dataset = products_dataset(SMALL, seed=13)
        blocks = BlockPurging().process(TokenBlocking().build(dataset))
        assert evaluate(blocks, dataset.ground_truth).pc > 0.9

    def test_model_numbers_present(self):
        from repro.datasets.synthetic import products_dataset

        dataset = products_dataset(SMALL, seed=5)
        models = [
            value
            for profile in dataset.collection1
            for value in profile.values("model")
        ]
        assert models
        assert all(any(ch.isdigit() for ch in model) for model in models)
