"""End-to-end assertions of the paper's worked example (Figures 1-9).

Every intermediate artefact of the running example — the blocks, the JS
blocking graph, the node-centric pruned graphs, Block Filtering's output and
the reciprocal blocks — is checked against the figures. This pins down the
exact semantics of each algorithm far more tightly than statistical tests.
"""

from __future__ import annotations

import pytest

from repro.blockprocessing.comparison_propagation import ComparisonPropagation
from repro.core import (
    BlockFiltering,
    MaterializedBlockingGraph,
    OptimizedEdgeWeighting,
    meta_block,
)
from repro.core.pruning import (
    ReciprocalWeightedNodePruning,
    RedefinedWeightedNodePruning,
    WeightedEdgePruning,
    WeightedNodePruning,
)
from tests.conftest import PAPER_JS_WEIGHTS

# Entity ids: p1..p6 -> 0..5.
P1, P2, P3, P4, P5, P6 = range(6)


class TestFigure1:
    """Token Blocking on the six profiles of Figure 1(a)."""

    def test_eight_blocks(self, example_blocks):
        assert len(example_blocks) == 8

    def test_block_contents(self, example_blocks):
        by_key = {block.key: set(block.entities1) for block in example_blocks}
        assert by_key == {
            "jack": {P1, P3},
            "miller": {P1, P3},
            "erick": {P2, P4},
            "green": {P2, P4},
            "vendor": {P2, P3},
            "seller": {P3, P5},
            "lloyd": {P1, P4},
            "car": {P3, P4, P5, P6},
        }

    def test_thirteen_comparisons(self, example_blocks):
        assert example_blocks.cardinality == 13

    def test_three_redundant_comparisons(self, example_blocks):
        distinct = example_blocks.distinct_comparisons()
        assert example_blocks.cardinality - len(distinct) == 3

    def test_eight_superfluous_comparisons(self, example_blocks, example_dataset):
        distinct = example_blocks.distinct_comparisons()
        superfluous = {
            pair for pair in distinct if pair not in example_dataset.ground_truth
        }
        assert len(superfluous) == 8

    def test_brute_force_is_fifteen(self, example_dataset):
        assert example_dataset.brute_force_comparisons == 15


class TestFigure2:
    """The JS blocking graph and the threshold-1/4 edge-centric pruning."""

    def test_graph_order_and_size(self, example_blocks):
        graph = MaterializedBlockingGraph(example_blocks, "JS")
        assert graph.order == 6
        assert graph.size == 10

    def test_all_js_weights(self, example_blocks):
        graph = MaterializedBlockingGraph(example_blocks, "JS")
        for (left, right), expected in PAPER_JS_WEIGHTS.items():
            assert graph.weight(left, right) == pytest.approx(expected)

    def test_wep_with_quarter_threshold_retains_figure_2b(self, example_blocks):
        # The paper prunes with an illustrative threshold of 1/4 and keeps
        # the five edges of Figure 2(b).
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        pruned = WeightedEdgePruning(threshold=0.25).prune(weighting)
        assert pruned.distinct_comparisons() == {
            (P1, P3),
            (P2, P4),
            (P3, P5),
            (P4, P6),
            (P5, P6),
        }

    def test_superfluous_edge_outweighs_matching_ones(self, example_blocks):
        # e(5,6) > e(1,3) and e(2,4): the paper's argument for why
        # edge-centric threshold tuning cannot remove all superfluous edges.
        graph = MaterializedBlockingGraph(example_blocks, "JS")
        assert graph.weight(P5, P6) > graph.weight(P1, P3)
        assert graph.weight(P5, P6) > graph.weight(P2, P4)


def _directed_wnp_edges(example_blocks):
    """The directed retained edges of the original WNP (Figure 5a)."""
    weighting = OptimizedEdgeWeighting(example_blocks, "JS")
    retained: set[tuple[int, int]] = set()
    for entity, neighborhood in weighting.iter_neighborhoods():
        threshold = sum(w for _, w in neighborhood) / len(neighborhood)
        for other, weight in neighborhood:
            if weight >= threshold:
                retained.add((entity, other))
    return retained


class TestFigure5:
    """Original node-centric pruning: 9 directed edges, 9 blocks."""

    EXPECTED_DIRECTED = {
        (P1, P3),
        (P2, P4),
        (P3, P1),
        (P3, P5),
        (P4, P2),
        (P4, P6),
        (P5, P3),
        (P5, P6),
        (P6, P5),
    }

    def test_directed_pruned_graph(self, example_blocks):
        assert _directed_wnp_edges(example_blocks) == self.EXPECTED_DIRECTED

    def test_original_wnp_retains_nine_comparisons(self, example_blocks):
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        pruned = WeightedNodePruning().prune(weighting)
        assert pruned.cardinality == 9

    def test_original_wnp_contains_redundant_pairs(self, example_blocks):
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        pruned = WeightedNodePruning().prune(weighting)
        assert len(pruned.distinct_comparisons()) == 5


class TestFigure8:
    """Redefined WNP: the undirected graph keeps 5 comparisons, same recall."""

    def test_redefined_wnp(self, example_blocks, example_dataset):
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        pruned = RedefinedWeightedNodePruning().prune(weighting)
        assert pruned.cardinality == 5
        assert pruned.distinct_comparisons() == {
            (P1, P3),
            (P2, P4),
            (P3, P5),
            (P4, P6),
            (P5, P6),
        }
        detected = example_dataset.ground_truth.detected_in(pruned)
        assert len(detected) == 2  # both duplicate pairs survive


class TestFigure9:
    """Reciprocal WNP: only reciprocally-linked pairs — 4 comparisons."""

    def test_reciprocal_wnp(self, example_blocks, example_dataset):
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        pruned = ReciprocalWeightedNodePruning().prune(weighting)
        assert pruned.distinct_comparisons() == {
            (P1, P3),
            (P2, P4),
            (P3, P5),
            (P5, P6),
        }
        detected = example_dataset.ground_truth.detected_in(pruned)
        assert len(detected) == 2

    def test_reciprocal_subset_of_redefined(self, example_blocks):
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        redefined = RedefinedWeightedNodePruning().prune(weighting)
        reciprocal = ReciprocalWeightedNodePruning().prune(weighting)
        assert reciprocal.distinct_comparisons() <= redefined.distinct_comparisons()


class TestFigure6:
    """Block Filtering on the example, then WEP on the filtered graph."""

    def test_remove_largest_block_per_entity(self, example_blocks):
        # With cardinality-based importance, "car" (6 comparisons) is the
        # least important block of every member. At r=0.75, p3 (5 blocks,
        # limit 4) and p4 (4 blocks, limit 3) are removed from it, while p5
        # (2 blocks, limit 2) and p6 (1 block, limit 1) stay.
        filtered = BlockFiltering(ratio=0.75).process(example_blocks)
        by_key = {block.key: set(block.entities1) for block in filtered}
        assert by_key["car"] == {P5, P6}
        # p1 (3 blocks, limit 2) keeps alphabetically-first unit blocks jack
        # and lloyd; "miller" shrinks to {p3} and is dropped as invalid.
        # Likewise p2 keeps erick/green and "vendor" is dropped.
        assert set(by_key) == {"jack", "lloyd", "erick", "green", "seller", "car"}
        assert by_key["jack"] == {P1, P3}
        assert by_key["seller"] == {P3, P5}

    def test_filtered_graph_weights(self, example_blocks):
        # Figure 6(b): after dropping the "car" block and one unit block for
        # p1/p2, the graph has edges 2/3 (p1,p3), 1 (p2,p4), 1/3 (p3,p5).
        # Reproduce that exact collection directly.
        from repro.datamodel.blocks import Block, BlockCollection

        filtered = BlockCollection(
            [
                Block("jack", (P1, P3)),
                Block("miller", (P1, P3)),
                Block("erick", (P2, P4)),
                Block("green", (P2, P4)),
                Block("seller", (P3, P5)),
            ],
            num_entities=6,
        )
        graph = MaterializedBlockingGraph(filtered, "JS")
        assert graph.weight(P1, P3) == pytest.approx(2 / 3)
        assert graph.weight(P2, P4) == pytest.approx(1.0)
        assert graph.weight(P3, P5) == pytest.approx(1 / 3)
        # WEP on this graph keeps only the two matching edges (Figure 6c-d).
        weighting = OptimizedEdgeWeighting(filtered, "JS")
        pruned = WeightedEdgePruning().prune(weighting)
        assert pruned.distinct_comparisons() == {(P1, P3), (P2, P4)}


class TestComparisonPropagationExample:
    """Comparison Propagation keeps the 10 distinct pairs of the example."""

    def test_distinct_pairs(self, example_blocks):
        propagated = ComparisonPropagation().process(example_blocks)
        assert propagated.cardinality == 10
        assert propagated.distinct_comparisons() == set(PAPER_JS_WEIGHTS)

    def test_lecobi_strategy_agrees(self, example_blocks):
        scan = ComparisonPropagation(strategy="scan").process(example_blocks)
        lecobi = ComparisonPropagation(strategy="lecobi").process(example_blocks)
        assert scan.distinct_comparisons() == lecobi.distinct_comparisons()
        assert scan.cardinality == lecobi.cardinality == 10


class TestMetaBlockEndToEnd:
    """meta_block() on the example reproduces the figures' pipeline."""

    def test_wnp_reciprocal_via_pipeline(self, example_dataset, example_blocks):
        result = meta_block(
            example_blocks,
            scheme="JS",
            algorithm="RcWNP",
            block_filtering_ratio=None,
        )
        assert result.comparisons.distinct_comparisons() == {
            (P1, P3),
            (P2, P4),
            (P3, P5),
            (P5, P6),
        }
        assert result.overhead_seconds > 0.0


class TestMoreWorkedExampleExactness:
    """Additional exact values derivable from the Figure 1 blocks."""

    def test_cnp_default_k_is_two(self, example_blocks):
        from repro.core.pruning.base import cardinality_node_threshold

        assert cardinality_node_threshold(example_blocks) == 2

    def test_cnp_top1_per_node(self, example_blocks):
        # With k=1 every node keeps its single best neighbour:
        # p1->p3, p2->p4, p3->p5 (2/5 beats 1/3), p4->p2, p5->p6, p6->p5.
        from repro.core.pruning import CardinalityNodePruning

        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        pruned = CardinalityNodePruning(k=1).prune(weighting)
        assert sorted(pruned.pairs) == [
            (0, 2),
            (1, 3),
            (1, 3),
            (2, 4),
            (4, 5),
            (4, 5),
        ]

    def test_cep_default_retains_nine_of_ten(self, example_blocks):
        from repro.core.pruning import CardinalityEdgePruning

        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        pruned = CardinalityEdgePruning().prune(weighting)
        # K = floor(18/2) = 9: everything but the weakest edge p3-p4 (1/8).
        assert pruned.cardinality == 9
        assert (2, 3) not in pruned.distinct_comparisons()

    def test_cbs_weights_on_example(self, example_blocks):
        graph = MaterializedBlockingGraph(example_blocks, "CBS")
        assert graph.weight(P1, P3) == 2.0  # jack + miller
        assert graph.weight(P2, P4) == 2.0  # erick + green
        assert graph.weight(P3, P5) == 2.0  # seller + car
        assert graph.weight(P5, P6) == 1.0  # car only

    def test_arcs_weights_on_example(self, example_blocks):
        import pytest as _pytest

        graph = MaterializedBlockingGraph(example_blocks, "ARCS")
        # p3-p5 share "seller" (1 comparison) and "car" (6 comparisons).
        assert graph.weight(P3, P5) == _pytest.approx(1.0 + 1 / 6)
        # p5-p6 share only "car".
        assert graph.weight(P5, P6) == _pytest.approx(1 / 6)

    def test_graph_free_on_example(self, example_blocks, example_dataset):
        from repro.core.graph_free import GraphFreeMetaBlocking

        result = GraphFreeMetaBlocking(0.55).process(example_blocks)
        detected = example_dataset.ground_truth.detected_in(result)
        assert len(detected) == 2  # both duplicates survive r=0.55

    def test_block_purging_drops_car_on_tiny_collection(self, example_blocks):
        from repro.blockprocessing import BlockPurging

        purged = BlockPurging(size_fraction=0.5).process(example_blocks)
        assert "car" not in {block.key for block in purged}
        assert len(purged) == 7
