"""Unit tests for the eight pruning algorithms."""

import pytest

from repro.core.edge_weighting import OptimizedEdgeWeighting, OriginalEdgeWeighting
from repro.core.pruning import (
    PRUNING_ALGORITHMS,
    CardinalityEdgePruning,
    CardinalityNodePruning,
    ReciprocalCardinalityNodePruning,
    ReciprocalWeightedNodePruning,
    RedefinedCardinalityNodePruning,
    RedefinedWeightedNodePruning,
    WeightedEdgePruning,
    WeightedNodePruning,
)
from repro.core.pruning.base import (
    cardinality_edge_threshold,
    cardinality_node_threshold,
    mean_edge_weight,
)
from repro.datamodel.blocks import BlockCollection
from repro.evaluation import evaluate


def _weighting(blocks, scheme="JS"):
    return OptimizedEdgeWeighting(blocks, scheme)


class TestThresholds:
    def test_cep_threshold_paper_formula(self, example_blocks):
        # sum(|b|) = 7*2 + 4 = 18 -> K = 9.
        assert cardinality_edge_threshold(example_blocks) == 9

    def test_cnp_threshold_paper_formula(self, example_blocks):
        # BPE = 18/6 = 3 -> k = 2.
        assert cardinality_node_threshold(example_blocks) == 2

    def test_cnp_threshold_floor_of_one(self):
        assert cardinality_node_threshold(BlockCollection([], 5)) == 1

    def test_mean_edge_weight(self, example_blocks):
        mean = mean_edge_weight(_weighting(example_blocks))
        assert mean == pytest.approx(0.27179, abs=1e-4)


class TestCEP:
    def test_retains_exactly_k(self, example_blocks):
        pruned = CardinalityEdgePruning(k=4).prune(_weighting(example_blocks))
        assert pruned.cardinality == 4

    def test_top_4_matches_figure_2b(self, example_blocks):
        # The paper notes CEP with K=4 would also produce Figure 2(b) minus
        # the lowest edge: the four top-weighted edges.
        pruned = CardinalityEdgePruning(k=4).prune(_weighting(example_blocks))
        assert pruned.distinct_comparisons() == {
            (4, 5),  # 1/2
            (2, 4),  # 2/5
            (1, 3),  # 2/5
            (0, 2),  # 2/6
        }

    def test_default_threshold(self, example_blocks):
        pruned = CardinalityEdgePruning().prune(_weighting(example_blocks))
        assert pruned.cardinality == min(9, 10)

    def test_k_larger_than_graph(self, example_blocks):
        pruned = CardinalityEdgePruning(k=999).prune(_weighting(example_blocks))
        assert pruned.cardinality == 10

    def test_no_redundant_output(self, example_blocks):
        pruned = CardinalityEdgePruning().prune(_weighting(example_blocks))
        assert pruned.cardinality == len(pruned.distinct_comparisons())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CardinalityEdgePruning(k=0)


class TestWEP:
    def test_mean_threshold_retains_above_average(self, example_blocks):
        pruned = WeightedEdgePruning().prune(_weighting(example_blocks))
        # Mean is ~0.2718: edges 1/3, 2/5, 2/5, 1/2 survive.
        assert pruned.distinct_comparisons() == {
            (0, 2),
            (1, 3),
            (2, 4),
            (4, 5),
        }

    def test_threshold_inclusive(self, example_blocks):
        pruned = WeightedEdgePruning(threshold=0.25).prune(
            _weighting(example_blocks)
        )
        assert (3, 5) in pruned.distinct_comparisons()  # weight exactly 1/4

    def test_zero_threshold_keeps_everything(self, example_blocks):
        pruned = WeightedEdgePruning(threshold=0.0).prune(
            _weighting(example_blocks)
        )
        assert pruned.cardinality == 10


class TestCNP:
    def test_every_entity_retains_an_edge(self, example_blocks):
        pruned = CardinalityNodePruning(k=1).prune(_weighting(example_blocks))
        covered = pruned.entity_ids()
        assert covered == {0, 1, 2, 3, 4, 5}

    def test_output_may_contain_redundant_pairs(self, example_blocks):
        pruned = CardinalityNodePruning(k=1).prune(_weighting(example_blocks))
        assert pruned.cardinality >= len(pruned.distinct_comparisons())

    def test_cardinality_at_most_k_per_node(self, example_blocks):
        pruned = CardinalityNodePruning(k=2).prune(_weighting(example_blocks))
        assert pruned.cardinality <= 2 * 6

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CardinalityNodePruning(k=0)


class TestWNP:
    def test_matches_figure_5(self, example_blocks):
        pruned = WeightedNodePruning().prune(_weighting(example_blocks))
        assert pruned.cardinality == 9
        assert pruned.distinct_comparisons() == {
            (0, 2),
            (1, 3),
            (2, 4),
            (3, 5),
            (4, 5),
        }


class TestRedefined:
    def test_redefined_cnp_no_redundancy(self, example_blocks):
        pruned = RedefinedCardinalityNodePruning(k=1).prune(
            _weighting(example_blocks)
        )
        assert pruned.cardinality == len(pruned.distinct_comparisons())

    def test_redefined_cnp_same_distinct_pairs_as_cnp(self, example_blocks):
        original = CardinalityNodePruning(k=2).prune(_weighting(example_blocks))
        redefined = RedefinedCardinalityNodePruning(k=2).prune(
            _weighting(example_blocks)
        )
        assert redefined.distinct_comparisons() == original.distinct_comparisons()

    def test_redefined_wnp_same_distinct_pairs_as_wnp(self, example_blocks):
        original = WeightedNodePruning().prune(_weighting(example_blocks))
        redefined = RedefinedWeightedNodePruning().prune(
            _weighting(example_blocks)
        )
        assert redefined.distinct_comparisons() == original.distinct_comparisons()

    def test_same_recall_fewer_comparisons(self, small_dirty, small_dirty_blocks):
        weighting = _weighting(small_dirty_blocks)
        original = WeightedNodePruning().prune(weighting)
        redefined = RedefinedWeightedNodePruning().prune(weighting)
        original_quality = evaluate(original, small_dirty.ground_truth)
        redefined_quality = evaluate(redefined, small_dirty.ground_truth)
        assert redefined_quality.pc == original_quality.pc
        assert redefined.cardinality <= original.cardinality


class TestReciprocal:
    def test_reciprocal_subset_of_redefined_cnp(self, small_dirty_blocks):
        weighting = _weighting(small_dirty_blocks)
        redefined = RedefinedCardinalityNodePruning().prune(weighting)
        reciprocal = ReciprocalCardinalityNodePruning().prune(weighting)
        assert (
            reciprocal.distinct_comparisons() <= redefined.distinct_comparisons()
        )

    def test_reciprocal_subset_of_redefined_wnp(self, small_dirty_blocks):
        weighting = _weighting(small_dirty_blocks)
        redefined = RedefinedWeightedNodePruning().prune(weighting)
        reciprocal = ReciprocalWeightedNodePruning().prune(weighting)
        assert (
            reciprocal.distinct_comparisons() <= redefined.distinct_comparisons()
        )

    def test_union_of_reciprocal_and_redefined_semantics(self, example_blocks):
        # An edge kept by redefined but not reciprocal is important for
        # exactly one endpoint.
        weighting = _weighting(example_blocks)
        redefined = RedefinedWeightedNodePruning().prune(weighting)
        reciprocal = ReciprocalWeightedNodePruning().prune(weighting)
        only_one_side = (
            redefined.distinct_comparisons() - reciprocal.distinct_comparisons()
        )
        assert only_one_side == {(3, 5)}  # p4 -> p6 but not p6 -> p4

    def test_no_redundancy(self, small_dirty_blocks):
        pruned = ReciprocalCardinalityNodePruning().prune(
            _weighting(small_dirty_blocks)
        )
        assert pruned.cardinality == len(pruned.distinct_comparisons())


class TestBackendIndependence:
    @pytest.mark.parametrize("name", sorted(PRUNING_ALGORITHMS))
    def test_same_result_under_both_backends(self, example_blocks, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        optimized = algorithm.prune(OptimizedEdgeWeighting(example_blocks, "JS"))
        original = algorithm.prune(OriginalEdgeWeighting(example_blocks, "JS"))
        assert sorted(optimized.pairs) == sorted(original.pairs)


class TestRegistry:
    def test_registry_contents(self):
        assert set(PRUNING_ALGORITHMS) == {
            "CEP",
            "CNP",
            "WEP",
            "WNP",
            "ReCNP",
            "ReWNP",
            "RcCNP",
            "RcWNP",
        }

    def test_names_match_instances(self):
        for name, cls in PRUNING_ALGORITHMS.items():
            assert cls.name == name
