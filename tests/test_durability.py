"""Crash-safety tests: write-ahead log, snapshot recovery, and the soak.

Four layers, matching the durability design in docs/architecture.md:

* WAL unit tests — framing, rotation, torn tails, CRC damage, fsync
  policies, retirement and sweeping;
* recovery equivalence — a recovered resolver's ``candidate_pairs`` are
  bit-identical to the in-process resolver that wrote the log, across
  schemes, Clean-Clean, mid-stream compactions and the threads backend;
* randomized kill points — hypothesis truncates the log at arbitrary
  byte offsets and recovery must always yield an exact prefix of the
  ingested stream, never raise, and report torn tails;
* the crash soak — a real daemon subprocess is SIGKILLed mid-ingest and
  restarted on the same WAL directory; no acknowledged upsert may be
  lost.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import TokenBlocking
from repro.client import ClientError, ResolverClient
from repro.core.execution import ExecutionConfig
from repro.core.faults import Fault, injected_faults
from repro.core.wal import (
    WalBroken,
    WalError,
    WriteAheadLog,
    encode_profile,
    read_resolver_manifest,
    read_segment,
    sweep_stale_wal,
    wal_segments,
)
from repro.datamodel.profiles import EntityProfile
from repro.incremental import IncrementalMetaBlocking
from repro.serve import BackgroundServer, ResolverServer

BATCH = 5
STREAM = 60  # profiles in the canonical kill-point stream


def _child_pythonpath() -> str:
    """PYTHONPATH for subprocesses: the repro source tree, absolute."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return src + (os.pathsep + existing if existing else "")


def _profiles(n: int, offset: int = 0) -> "list[EntityProfile]":
    first = ["john", "jane", "mary", "peter", "lucy", "frank"]
    last = ["smith", "jones", "brown", "muller", "rossi"]
    return [
        EntityProfile.from_dict(
            f"p{i}",
            {
                "name": f"{first[i % 6]} {last[i % 5]}",
                "city": f"town{i % 9}",
                "year": str(1990 + i % 7),
            },
        )
        for i in range(offset, offset + n)
    ]


def _resolver(scheme: str = "CBS", **kwargs) -> IncrementalMetaBlocking:
    kwargs.setdefault("k", 4)
    kwargs.setdefault("filtering_ratio", 1.0)
    return IncrementalMetaBlocking(
        TokenBlocking().keys_for, scheme=scheme, **kwargs
    )


def _feed(resolver, profiles, batch=BATCH) -> None:
    for i in range(0, len(profiles), batch):
        resolver.add_batch(profiles[i : i + batch])


# -- WAL unit tests -----------------------------------------------------------


class TestWriteAheadLog:
    def test_append_read_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        seq1 = wal.append([{"identifier": "a", "attributes": [["n", "x"]]}], [0])
        seq2 = wal.append(
            [{"identifier": "b", "attributes": []},
             {"identifier": "c", "attributes": [["n", "y"]]}],
            [0, 1],
        )
        wal.close()
        assert (seq1, seq2) == (1, 2)
        (segment,) = wal_segments(tmp_path)
        records, tear = read_segment(segment)
        assert tear is None
        assert [r.seq for r in records] == [1, 2]
        assert records[0].profiles[0]["identifier"] == "a"
        assert records[1].sources == (0, 1)

    def test_rotation_and_stats(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off", segment_bytes=256)
        for i in range(12):
            wal.append(
                [{"identifier": f"p{i}", "attributes": [["n", "v" * 40]]}], [0]
            )
        stats = wal.stats()
        wal.close()
        segments = wal_segments(tmp_path)
        assert len(segments) > 1  # rotated
        assert stats["appends"] == 12
        assert stats["segments"] == len(segments)
        seqs = [
            record.seq
            for segment in segments
            for record in read_segment(segment)[0]
        ]
        assert seqs == list(range(1, 13))  # contiguous across segments

    def test_fsync_policy_counters(self, tmp_path):
        for policy, expect_fsyncs in (("off", 0), ("batch", 3), ("always", 3)):
            wal = WriteAheadLog(tmp_path / policy, fsync_policy=policy)
            for i in range(3):
                wal.append([{"identifier": f"p{i}", "attributes": []}], [0])
            assert wal.stats()["fsyncs"] == expect_fsyncs
            wal.close()

    def test_torn_tail_stops_read(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        for i in range(3):
            wal.append([{"identifier": f"p{i}", "attributes": []}], [0])
        wal.close()
        (segment,) = wal_segments(tmp_path)
        size = segment.stat().st_size
        with open(segment, "r+b") as handle:
            handle.truncate(size - 7)  # tear the last record mid-payload
        records, tear = read_segment(segment)
        assert [r.seq for r in records] == [1, 2]
        assert tear is not None

    def test_crc_damage_stops_read(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        for i in range(3):
            wal.append([{"identifier": f"p{i}", "attributes": []}], [0])
        wal.close()
        (segment,) = wal_segments(tmp_path)
        blob = bytearray(segment.read_bytes())
        blob[-3] ^= 0xFF  # flip a byte inside the final payload
        segment.write_bytes(bytes(blob))
        records, tear = read_segment(segment)
        assert [r.seq for r in records] == [1, 2]
        assert "CRC" in tear

    def test_retire_through(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off", segment_bytes=256)
        for i in range(12):
            wal.append(
                [{"identifier": f"p{i}", "attributes": [["n", "v" * 40]]}], [0]
            )
        before = wal_segments(tmp_path)
        removed = wal.retire_through(6)
        after = wal_segments(tmp_path)
        assert removed and len(after) < len(before)
        # Everything still on disk past the retired prefix is > seq 6 or
        # shares a segment with a record > 6.
        kept = [r.seq for s in after for r in read_segment(s)[0]]
        assert max(kept) == 12 and min(kept) <= 7
        wal.close()

    def test_broken_wal_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync_policy="off")
        wal.append([{"identifier": "a", "attributes": []}], [0])
        wal.mark_broken("test poison")
        with pytest.raises(WalBroken):
            wal.append([{"identifier": "b", "attributes": []}], [0])
        wal.close()


class TestWalWiring:
    def test_fresh_dir_refusal(self, tmp_path):
        resolver = _resolver(wal_dir=tmp_path / "wal")
        resolver.add_batch(_profiles(4))
        with pytest.raises(ValueError, match="recover"):
            _resolver(wal_dir=tmp_path / "wal")

    def test_manifest_written_and_conflicts_detected(self, tmp_path):
        wal_dir = tmp_path / "wal"
        resolver = _resolver("CBS", wal_dir=wal_dir)
        resolver.add_batch(_profiles(4))
        manifest = read_resolver_manifest(wal_dir)
        assert manifest["scheme"] == "CBS" and manifest["k"] == 4
        recovered, _ = IncrementalMetaBlocking.recover(wal_dir, scheme="JS")
        # the manifest, not the flag, is authoritative on recovery
        assert recovered.scheme.name == "CBS"

    def test_unacked_failure_poisons_log(self, tmp_path):
        resolver = _resolver(wal_dir=tmp_path / "wal")
        resolver.add_batch(_profiles(4))
        resolver.wal.mark_broken("simulated append failure")
        with pytest.raises(WalError):
            resolver.add_batch(_profiles(4, offset=4))
        recovered, _ = IncrementalMetaBlocking.recover(tmp_path / "wal")
        assert len(recovered) == 4  # the unacked batch is not replayed

    def test_wal_dir_with_foreign_compact_dir_rejected(self, tmp_path):
        # Snapshots anchor WAL truncation; letting them land outside the
        # WAL dir would truncate the log against state recover() never
        # reads. The CLI refuses the combination and so must the API.
        with pytest.raises(ValueError, match="compact_dir"):
            _resolver(
                wal_dir=tmp_path / "wal", compact_dir=tmp_path / "elsewhere"
            )
        with pytest.raises(ValueError, match="compact_dir"):
            _resolver(
                execution=ExecutionConfig(
                    wal_dir=tmp_path / "wal2",
                    compact_dir=tmp_path / "elsewhere",
                )
            )
        with pytest.raises(ValueError, match="compact_dir"):
            IncrementalMetaBlocking.recover(
                tmp_path / "wal3", compact_dir=tmp_path / "elsewhere"
            )
        # Spelling out the canonical location explicitly is fine.
        inside = _resolver(
            wal_dir=tmp_path / "wal4",
            compact_dir=tmp_path / "wal4" / "snapshots",
        )
        assert inside.compact_dir == str(tmp_path / "wal4" / "snapshots")

    def test_snapshot_fsynced_before_wal_truncation(
        self, tmp_path, monkeypatch
    ):
        # The snapshot replaces the WAL segments compact() retires, so
        # under a durable policy save_epoch must fsync it (files + dirs)
        # before retire_through deletes them; with fsync_policy="off" the
        # snapshot write stays fsync-free.
        import repro.blockprocessing.delta_index as delta_index

        synced: "list[int]" = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(delta_index.os, "fsync", spy)
        durable = _resolver(wal_dir=tmp_path / "wal")  # default: batch
        _feed(durable, _profiles(2 * BATCH))
        synced.clear()
        durable.compact()
        # member arrays + manifest + state sidecar + tmp dir + parent dir
        assert len(synced) >= 6
        relaxed = _resolver(wal_dir=tmp_path / "wal2", fsync_policy="off")
        _feed(relaxed, _profiles(2 * BATCH))
        synced.clear()
        relaxed.compact()
        assert not synced

    def test_sweep_stale_wal(self, tmp_path):
        wal_dir = tmp_path / "wal"
        resolver = _resolver(wal_dir=wal_dir)
        _feed(resolver, _profiles(30))
        resolver.compact()  # snapshot covers every record so far
        resolver.wal.close()
        # Regress the log to pre-retirement state: fabricate an old,
        # fully-covered segment like a crash between snapshot and retire.
        stale = WriteAheadLog(tmp_path / "stale", fsync_policy="off")
        stale.append([{"identifier": "old", "attributes": []}], [0])
        stale.close()
        old = wal_segments(tmp_path / "stale")[0]
        target = wal_dir / "wal-000000.log"
        target.write_bytes(old.read_bytes())
        preview = sweep_stale_wal(wal_dir, dry_run=True)
        assert target in preview and target.exists()
        removed = sweep_stale_wal(wal_dir)
        assert target in removed and not target.exists()


# -- recovery equivalence -----------------------------------------------------


class TestRecoveryEquivalence:
    @pytest.mark.parametrize("scheme", ["CBS", "JS"])
    def test_bit_identical_export(self, scheme, tmp_path):
        profiles = _profiles(STREAM)
        durable = _resolver(scheme, wal_dir=tmp_path / "wal")
        _feed(durable, profiles)
        recovered, report = IncrementalMetaBlocking.recover(tmp_path / "wal")
        assert len(recovered) == STREAM
        assert report.upserts_replayed == STREAM
        for algorithm in ("CNP", "RcCNP"):
            assert list(recovered.candidate_pairs(algorithm)) == list(
                durable.candidate_pairs(algorithm)
            )

    def test_clean_clean(self, tmp_path):
        profiles = _profiles(STREAM)
        durable = _resolver(wal_dir=tmp_path / "wal", clean_clean=True)
        mirror = _resolver(clean_clean=True)
        for i in range(0, STREAM, BATCH):
            chunk = profiles[i : i + BATCH]
            sources = [(i + j) % 2 for j in range(len(chunk))]
            durable.add_batch(chunk, sources)
            mirror.add_batch(chunk, sources)
        recovered, _ = IncrementalMetaBlocking.recover(tmp_path / "wal")
        assert recovered.clean_clean
        assert list(recovered.candidate_pairs("CNP")) == list(
            mirror.candidate_pairs("CNP")
        )

    def test_snapshot_plus_tail_replay(self, tmp_path):
        profiles = _profiles(STREAM)
        durable = _resolver(wal_dir=tmp_path / "wal")
        _feed(durable, profiles[:40])
        durable.compact()
        _feed(durable, profiles[40:])
        recovered, report = IncrementalMetaBlocking.recover(tmp_path / "wal")
        assert report.snapshot_profiles == 40
        assert report.upserts_replayed == STREAM - 40
        assert list(recovered.candidate_pairs("CNP")) == list(
            durable.candidate_pairs("CNP")
        )
        assert report.records_replayed == (STREAM - 40) // BATCH

    def test_threads_backend(self, tmp_path):
        execution = ExecutionConfig(parallel=2, parallel_backend="threads")
        profiles = _profiles(STREAM)
        durable = _resolver(wal_dir=tmp_path / "wal", execution=execution)
        _feed(durable, profiles)
        recovered, _ = IncrementalMetaBlocking.recover(
            tmp_path / "wal", execution=execution
        )
        mirror = _resolver()
        _feed(mirror, profiles)
        assert list(recovered.candidate_pairs("CNP")) == list(
            mirror.candidate_pairs("CNP")
        )

    def test_recovered_resolver_keeps_logging(self, tmp_path):
        profiles = _profiles(STREAM)
        durable = _resolver(wal_dir=tmp_path / "wal")
        _feed(durable, profiles[:30])
        first, _ = IncrementalMetaBlocking.recover(tmp_path / "wal")
        _feed(first, profiles[30:])
        second, report = IncrementalMetaBlocking.recover(tmp_path / "wal")
        mirror = _resolver()
        _feed(mirror, profiles)
        assert len(second) == STREAM
        assert report.torn_tail is None
        assert list(second.candidate_pairs("CNP")) == list(
            mirror.candidate_pairs("CNP")
        )


class TestRecoveryChainIntegrity:
    """The replay chain across torn, debris, and missing segments."""

    def test_resume_skips_record_free_debris_segments(self, tmp_path):
        # Double crash: segment 1 ends in a torn record, a first recovery
        # resumed into segment 2 but crashed before completing its first
        # append (zero intact records), a second recovery resumed into
        # segment 3 and acknowledged another batch. Replay must follow
        # the chain past the debris segment instead of stopping at the
        # seg-1 tear and silently dropping the acked seg-3 records.
        wal_dir = tmp_path / "wal"
        profiles = _profiles(3 * BATCH)
        durable = _resolver(wal_dir=wal_dir)
        _feed(durable, profiles[: 2 * BATCH])  # seqs 1-2 in segment 1
        durable.wal.close()
        (segment,) = wal_segments(wal_dir)
        with open(segment, "ab") as handle:
            handle.write(b"\x07\x00")  # crash mid-append: torn header
        (wal_dir / "wal-000002.log").write_bytes(b"\x40")  # debris
        resumed = WriteAheadLog(
            wal_dir, fsync_policy="off", next_seq=3, segment_index=3
        )
        resumed.append(
            [encode_profile(p) for p in profiles[2 * BATCH :]], [0] * BATCH
        )
        resumed.close()
        recovered, report = IncrementalMetaBlocking.recover(wal_dir)
        assert len(recovered) == 3 * BATCH
        assert report.torn_tail is None
        assert report.last_seq == 3
        assert any("torn" in warning for warning in report.warnings)
        mirror = _resolver()
        _feed(mirror, profiles)
        assert list(recovered.candidate_pairs("CNP")) == list(
            mirror.candidate_pairs("CNP")
        )

    def test_sequence_gap_refuses_recovery(self, tmp_path):
        # A deleted middle segment is not crash debris — acked records
        # are gone wholesale and recovery must refuse, not silently
        # serve the prefix and re-issue the lost sequence numbers.
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir, fsync_policy="off", segment_bytes=1)
        for i in range(3):  # one record per segment at segment_bytes=1
            wal.append(
                [encode_profile(p) for p in _profiles(2, offset=2 * i)],
                [0, 0],
            )
        wal.close()
        wal_segments(wal_dir)[1].unlink()
        with pytest.raises(WalError, match="gap"):
            IncrementalMetaBlocking.recover(wal_dir)

    def test_unresumed_tear_refuses_recovery(self, tmp_path):
        # Segment 1's only record is torn, yet segment 2 exists — the
        # seq-1 record must have been acked for seq 2 to exist, so this
        # is acked-data loss, not a skippable tail.
        wal_dir = tmp_path / "wal"
        wal = WriteAheadLog(wal_dir, fsync_policy="off", segment_bytes=1)
        for i in range(2):
            wal.append(
                [encode_profile(p) for p in _profiles(2, offset=2 * i)],
                [0, 0],
            )
        wal.close()
        first = wal_segments(wal_dir)[0]
        with open(first, "r+b") as handle:
            handle.truncate(first.stat().st_size - 7)
        with pytest.raises(WalError, match="does not resume"):
            IncrementalMetaBlocking.recover(wal_dir)


# -- randomized kill points ---------------------------------------------------


@pytest.fixture(scope="module")
def canonical_wal(tmp_path_factory):
    """One durable ingest of the canonical stream, reused per kill point."""
    root = tmp_path_factory.mktemp("canonical")
    wal_dir = root / "wal"
    resolver = _resolver(wal_dir=wal_dir)
    _feed(resolver, _profiles(STREAM))
    resolver.wal.close()
    (segment,) = wal_segments(wal_dir)
    return wal_dir, segment.read_bytes()


_PREFIX_CACHE: dict = {}


def _expected_pairs(count: int) -> list:
    """CNP pairs of a fresh resolver fed the first ``count`` profiles."""
    if count not in _PREFIX_CACHE:
        mirror = _resolver()
        _feed(mirror, _profiles(count))
        _PREFIX_CACHE[count] = list(mirror.candidate_pairs("CNP"))
    return _PREFIX_CACHE[count]


class TestKillPoints:
    @settings(max_examples=30, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_truncation_recovers_exact_prefix(
        self, canonical_wal, tmp_path_factory, fraction
    ):
        wal_dir, blob = canonical_wal
        cut = int(fraction * len(blob))
        scratch = tmp_path_factory.mktemp("kill")
        killed = scratch / "wal"
        killed.mkdir()
        (killed / "resolver.json").write_bytes(
            (wal_dir / "resolver.json").read_bytes()
        )
        (killed / "wal-000001.log").write_bytes(blob[:cut])
        recovered, report = IncrementalMetaBlocking.recover(killed)
        count = len(recovered)
        assert count % BATCH == 0  # records replay whole batches or not at all
        assert count == report.upserts_replayed
        if cut < len(blob):
            assert count < STREAM
        # a mid-record cut is reported as a torn tail, never raised
        records, tear = read_segment(killed / "wal-000001.log")
        assert count == sum(len(r.profiles) for r in records)
        assert (report.torn_tail is not None) == (tear is not None)
        assert list(recovered.candidate_pairs("CNP")) == _expected_pairs(count)

    @settings(max_examples=10, deadline=None)
    @given(fraction=st.floats(min_value=0.05, max_value=0.95))
    def test_truncation_then_continue_then_recover(
        self, canonical_wal, tmp_path_factory, fraction
    ):
        """After a torn tail, new writes land past it and recover cleanly."""
        wal_dir, blob = canonical_wal
        cut = int(fraction * len(blob))
        scratch = tmp_path_factory.mktemp("resume")
        killed = scratch / "wal"
        killed.mkdir()
        (killed / "resolver.json").write_bytes(
            (wal_dir / "resolver.json").read_bytes()
        )
        (killed / "wal-000001.log").write_bytes(blob[:cut])
        recovered, _ = IncrementalMetaBlocking.recover(killed)
        base = len(recovered)
        extra = _profiles(BATCH, offset=base)
        recovered.add_batch(extra)
        again, report = IncrementalMetaBlocking.recover(killed)
        assert len(again) == base + BATCH
        assert report.torn_tail is None  # the old tear is a known skip now
        mirror = _resolver()
        _feed(mirror, _profiles(base))
        mirror.add_batch(extra)
        assert list(again.candidate_pairs("CNP")) == list(
            mirror.candidate_pairs("CNP")
        )


# -- injected WAL faults ------------------------------------------------------


class TestInjectedWalFaults:
    def test_torn_wal_tail_fault(self, tmp_path):
        resolver = _resolver(wal_dir=tmp_path / "wal")
        resolver.add_batch(_profiles(BATCH))
        with injected_faults(Fault(site="wal", op="torn_wal_tail", chunk=2)):
            with pytest.raises(WalError):
                resolver.add_batch(_profiles(BATCH, offset=BATCH))
        with pytest.raises(WalBroken):  # sticky: nothing acks after a tear
            resolver.add_batch(_profiles(BATCH, offset=2 * BATCH))
        recovered, report = IncrementalMetaBlocking.recover(tmp_path / "wal")
        assert len(recovered) == BATCH
        assert report.torn_tail is not None  # the half-written frame
        mirror = _resolver()
        mirror.add_batch(_profiles(BATCH))
        assert list(recovered.candidate_pairs("CNP")) == list(
            mirror.candidate_pairs("CNP")
        )

    def test_fsync_error_fault(self, tmp_path):
        resolver = _resolver(wal_dir=tmp_path / "wal", fsync_policy="batch")
        resolver.add_batch(_profiles(BATCH))
        with injected_faults(Fault(site="wal", op="fsync_error", chunk=2)):
            with pytest.raises(WalError):
                resolver.add_batch(_profiles(BATCH, offset=BATCH))
        with pytest.raises(WalBroken):
            resolver.add_batch(_profiles(BATCH, offset=2 * BATCH))
        # The frame hit the file before the failed fsync, so recovery may
        # include the unacked batch — a prefix of the *applied* order.
        recovered, report = IncrementalMetaBlocking.recover(tmp_path / "wal")
        assert len(recovered) in (BATCH, 2 * BATCH)
        assert report.torn_tail is None

    def test_fault_plan_via_environment(self, tmp_path):
        from repro.core.faults import FaultPlan

        plan = FaultPlan(
            (Fault(site="wal", op="torn_wal_tail", chunk=2),)
        ).to_json()
        script = textwrap.dedent(
            """
            import sys
            from repro.blocking import TokenBlocking
            from repro.core.wal import WalError
            from repro.datamodel.profiles import EntityProfile
            from repro.incremental import IncrementalMetaBlocking

            wal_dir = sys.argv[1]
            profiles = [
                EntityProfile.from_dict(f"p{i}", {"name": f"n{i % 4}"})
                for i in range(10)
            ]
            resolver = IncrementalMetaBlocking(
                TokenBlocking().keys_for, scheme="CBS", k=4,
                filtering_ratio=1.0, wal_dir=wal_dir,
            )
            resolver.add_batch(profiles[:5])
            try:
                resolver.add_batch(profiles[5:])
            except WalError:
                sys.exit(0)
            sys.exit(3)  # the env-injected tear did not fire
            """
        )
        env = dict(os.environ, REPRO_FAULTS=plan, PYTHONPATH=_child_pythonpath())
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / "wal")],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        recovered, report = IncrementalMetaBlocking.recover(tmp_path / "wal")
        assert len(recovered) == 5 and report.torn_tail is not None


# -- daemon recovery protocol -------------------------------------------------


class TestServerRecovery:
    def test_health_and_retry_through_recovery(self, tmp_path):
        wal_dir = tmp_path / "wal"
        seeded = _resolver(wal_dir=wal_dir)
        seeded.add_batch(_profiles(BATCH))
        seeded.wal.close()
        release = {"at": time.monotonic() + 0.4}

        def recovery():
            while time.monotonic() < release["at"]:
                time.sleep(0.01)
            return IncrementalMetaBlocking.recover(wal_dir)

        server = ResolverServer(
            recovery=recovery, path=str(tmp_path / "er.sock"), flush_size=2
        )
        statuses = []
        with BackgroundServer(server):
            client = ResolverClient(
                str(tmp_path / "er.sock"), retry_backoff=0.02
            )
            statuses.append(client.health()["status"])
            entity_id, _ = client.upsert(_profiles(1, offset=BATCH)[0])
            health = client.health()
            statuses.append(health["status"])
            assert entity_id == BATCH  # recovery state came first
            assert health["profiles"] == BATCH + 1
            assert health["recovery"]["upserts_replayed"] == BATCH
            assert "wal" in health
            stats = client.stats()
            assert stats["status"] == "ready"
            assert stats["wal"]["last_seq"] >= 2
            client.close()
        assert statuses[0] == "recovering" and statuses[-1] == "ready"

    def test_failed_recovery_is_observable(self, tmp_path):
        def recovery():
            raise RuntimeError("disk on fire")

        server = ResolverServer(
            recovery=recovery, path=str(tmp_path / "er.sock")
        )
        with BackgroundServer(server):
            client = ResolverClient(
                str(tmp_path / "er.sock"),
                request_retries=1,
                retry_backoff=0.01,
            )
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                health = client.health()
                if health["status"] == "failed":
                    break
                time.sleep(0.02)
            assert health["status"] == "failed"
            assert "disk on fire" in health["error"]
            with pytest.raises(ClientError, match="disk on fire"):
                client.ping()
            client.close()

    def test_resolver_and_recovery_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            ResolverServer()
        with pytest.raises(ValueError, match="exactly one"):
            ResolverServer(_resolver(), recovery=lambda: None)


class TestClientBackoff:
    def test_backoff_resets_after_reconnect(self, tmp_path):
        client = ResolverClient(
            str(tmp_path / "nothing.sock"),
            connect_retries=2,
            retry_backoff=0.01,
        )
        with pytest.raises(ClientError):
            client.connect()
        assert client._connect_failures == 3
        server = ResolverServer(
            _resolver(), path=str(tmp_path / "nothing.sock")
        )
        with BackgroundServer(server):
            client.connect()
            assert client._connect_failures == 0
            client.close()


# -- the crash soak -----------------------------------------------------------


_DAEMON_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.incremental import IncrementalMetaBlocking
    from repro.serve.server import ResolverServer

    wal_dir, socket_path = sys.argv[1], sys.argv[2]

    def recovery():
        return IncrementalMetaBlocking.recover(
            wal_dir, blocking="token", scheme="CBS", k=4,
            filtering_ratio=1.0, fsync_policy="batch",
        )

    ResolverServer(
        recovery=recovery, path=socket_path,
        flush_size=4, flush_interval=0.005,
    ).run()
    """
)


def _wait_ready(address, timeout=30.0) -> None:
    client = ResolverClient(address, retry_backoff=0.02, connect_retries=20)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.health()["status"] == "ready":
                client.close()
                return
        except ClientError:
            time.sleep(0.05)
    client.close()
    raise AssertionError("daemon never reached ready")


class TestCrashSoak:
    def test_sigkill_loses_no_acked_upsert(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        socket_path = str(tmp_path / "soak.sock")
        stream = _profiles(400)
        acked = 0
        kill_after = [0.45, 0.25, 0.35]  # seconds of ingest per round
        for round_index, delay in enumerate(kill_after):
            proc = subprocess.Popen(
                [sys.executable, "-c", _DAEMON_SCRIPT, wal_dir, socket_path],
                env=dict(os.environ, PYTHONPATH=_child_pythonpath()),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            try:
                _wait_ready(socket_path)
                client = ResolverClient(
                    socket_path, retry_backoff=0.01, request_retries=2
                )
                kill_at = time.monotonic() + delay
                sent = acked
                while sent < len(stream):
                    if time.monotonic() >= kill_at:
                        proc.send_signal(signal.SIGKILL)
                    try:
                        client.upsert(stream[sent])
                    except ClientError:
                        break  # the daemon died mid-request: not acked
                    sent += 1
                    acked = sent
                client.close()
            finally:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=30)
            recovered, report = IncrementalMetaBlocking.recover(wal_dir)
            count = len(recovered)
            # every acknowledged upsert survived; at most one in-flight
            # convoy beyond the last ack may also have landed
            assert count >= acked, (
                f"round {round_index}: acked {acked} but recovered {count}"
            )
            assert count <= sent + 4
            mirror = _resolver()
            if count:
                mirror.add_batch(stream[:count])
            assert list(recovered.candidate_pairs("CNP")) == list(
                mirror.candidate_pairs("CNP")
            ), f"round {round_index}: recovered state diverged at {count}"
            acked = count  # the next round continues from recovered state
        assert acked > 0  # the soak must have made progress


# -- CLI ----------------------------------------------------------------------


class TestDurabilityCli:
    def test_recover_command(self, tmp_path, capsys):
        from repro.cli import main

        wal_dir = str(tmp_path / "wal")
        resolver = _resolver(wal_dir=wal_dir)
        _feed(resolver, _profiles(20))
        resolver.wal.close()
        export = str(tmp_path / "pairs.csv")
        assert main(["recover", "--wal-dir", wal_dir, "--export", export]) == 0
        out = capsys.readouterr().out
        assert "20 upserts" in out and "candidate pairs" in out
        header = open(export, encoding="utf-8").readline().strip()
        assert header == "left_id,right_id"
        assert main(["recover", "--wal-dir", wal_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["upserts_replayed"] == 20

    def test_recover_compact_truncates(self, tmp_path, capsys):
        from repro.cli import main

        wal_dir = tmp_path / "wal"
        resolver = _resolver(wal_dir=wal_dir)
        _feed(resolver, _profiles(20))
        resolver.wal.close()
        assert main(["recover", "--wal-dir", str(wal_dir), "--compact"]) == 0
        capsys.readouterr()
        # the records are now covered by the snapshot: replay is empty
        assert main(["recover", "--wal-dir", str(wal_dir)]) == 0
        assert "0 records" in capsys.readouterr().out

    def test_clean_wal_dir(self, tmp_path, capsys):
        from repro.cli import main

        wal_dir = tmp_path / "wal"
        resolver = _resolver(wal_dir=wal_dir)
        _feed(resolver, _profiles(10))
        resolver.wal.close()
        # a half-written snapshot temp left by a crashed compaction
        (wal_dir / "snapshots").mkdir(exist_ok=True)
        junk = wal_dir / "snapshots" / "epoch-000009.tmp-99999999"
        junk.mkdir()
        assert main(
            ["clean", "--wal-dir", str(wal_dir), "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would remove" in out and junk.exists()
        assert main(["clean", "--wal-dir", str(wal_dir)]) == 0
        assert not junk.exists()

    def test_serve_rejects_conflicting_dirs(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "serve",
                "--wal-dir", str(tmp_path / "wal"),
                "--compact-dir", str(tmp_path / "snaps"),
            ]
        )
        assert rc == 2
