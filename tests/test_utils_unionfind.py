"""Unit tests for the disjoint-set structure."""

from repro.utils.unionfind import UnionFind


class TestUnionFind:
    def test_singletons_initially_disjoint(self):
        union = UnionFind([1, 2, 3])
        assert not union.connected(1, 2)
        assert union.component_size(1) == 1

    def test_union_connects(self):
        union = UnionFind()
        assert union.union(1, 2) is True
        assert union.connected(1, 2)

    def test_union_idempotent(self):
        union = UnionFind()
        union.union(1, 2)
        assert union.union(1, 2) is False
        assert union.union(2, 1) is False

    def test_transitivity(self):
        union = UnionFind()
        union.union(1, 2)
        union.union(2, 3)
        assert union.connected(1, 3)
        assert union.component_size(3) == 3

    def test_lazy_registration(self):
        union = UnionFind()
        assert union.find("never seen") == "never seen"
        assert "never seen" in union

    def test_components(self):
        union = UnionFind(range(5))
        union.union(0, 1)
        union.union(2, 3)
        components = sorted(sorted(c) for c in union.components())
        assert components == [[0, 1], [2, 3], [4]]

    def test_len(self):
        union = UnionFind([1, 2])
        union.union(5, 6)
        assert len(union) == 4

    def test_mixed_types(self):
        union = UnionFind()
        union.union("a", 1)
        assert union.connected(1, "a")

    def test_large_chain_path_compression(self):
        union = UnionFind()
        for index in range(1000):
            union.union(index, index + 1)
        assert union.connected(0, 1000)
        assert union.component_size(500) == 1001
