"""Unit tests for the gold-standard duplicate set."""

import pytest

from repro.datamodel.groundtruth import DuplicateSet


class TestDuplicateSet:
    def test_canonical_storage(self):
        dups = DuplicateSet([(5, 1)])
        assert (1, 5) in dups
        assert (5, 1) in dups
        assert len(dups) == 1

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            DuplicateSet([(2, 2)])

    def test_is_match(self):
        dups = DuplicateSet([(0, 1)])
        assert dups.is_match(1, 0)
        assert not dups.is_match(0, 2)

    def test_detected_in_deduplicates(self):
        dups = DuplicateSet([(0, 1), (2, 3)])
        detected = dups.detected_in([(1, 0), (0, 1), (4, 5)])
        assert detected == {(0, 1)}

    def test_detected_in_empty(self):
        assert DuplicateSet([(0, 1)]).detected_in([]) == set()

    def test_from_clusters_transitive_closure(self):
        dups = DuplicateSet.from_clusters([[1, 2, 3], [7, 8]])
        assert dups.pairs == frozenset({(1, 2), (1, 3), (2, 3), (7, 8)})

    def test_from_clusters_ignores_duplicate_members(self):
        dups = DuplicateSet.from_clusters([[1, 1, 2]])
        assert dups.pairs == frozenset({(1, 2)})

    def test_iteration(self):
        dups = DuplicateSet([(3, 0), (1, 2)])
        assert sorted(dups) == [(0, 3), (1, 2)]
