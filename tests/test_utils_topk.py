"""Unit tests for the bounded top-k heap."""

import pytest

from repro.utils.topk import TopKHeap


class TestTopKHeap:
    def test_keeps_best_k(self):
        heap = TopKHeap(2)
        for score, item in [(0.1, "a"), (0.9, "b"), (0.5, "c")]:
            heap.push(score, item)
        assert heap.items() == {"b", "c"}

    def test_under_capacity(self):
        heap = TopKHeap(10)
        heap.push(1.0, "x")
        assert heap.items() == {"x"}
        assert len(heap) == 1

    def test_zero_k_retains_nothing(self):
        heap = TopKHeap(0)
        assert heap.push(1.0, "x") is False
        assert heap.items() == set()

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            TopKHeap(-1)

    def test_push_reports_retention(self):
        heap = TopKHeap(1)
        assert heap.push(0.5, "a") is True
        assert heap.push(0.9, "b") is True  # evicts a
        assert heap.push(0.1, "c") is False

    def test_deterministic_tie_break_larger_item_wins(self):
        heap = TopKHeap(1)
        heap.push(0.5, (1, 2))
        heap.push(0.5, (3, 4))
        assert heap.items() == {(3, 4)}
        # Order of insertion must not matter.
        heap2 = TopKHeap(1)
        heap2.push(0.5, (3, 4))
        heap2.push(0.5, (1, 2))
        assert heap2.items() == {(3, 4)}

    def test_sorted_items_best_first(self):
        heap = TopKHeap(3)
        for score, item in [(0.2, "a"), (0.8, "b"), (0.5, "c")]:
            heap.push(score, item)
        assert [item for _, item in heap.sorted_items()] == ["b", "c", "a"]

    def test_min_entry(self):
        heap = TopKHeap(2)
        assert heap.min_entry() is None
        heap.push(0.3, "a")
        heap.push(0.7, "b")
        assert heap.min_entry() == (0.3, "a")

    def test_contains(self):
        heap = TopKHeap(2)
        heap.push(0.5, "a")
        assert "a" in heap
        assert "b" not in heap

    def test_from_scored(self):
        heap = TopKHeap.from_scored(2, [(0.1, 10), (0.3, 30), (0.2, 20)])
        assert heap.items() == {30, 20}
