"""Unit tests for Block Scheduling and Block Pruning."""

import pytest

from repro.blockprocessing.block_scheduling import (
    BlockPruning,
    BlockScheduling,
)
from repro.datamodel.blocks import Block, BlockCollection
from repro.datamodel.groundtruth import DuplicateSet
from repro.matching import OracleMatcher


class TestBlockScheduling:
    def test_orders_by_ascending_cardinality(self):
        blocks = BlockCollection(
            [Block("big", (0, 1, 2, 3)), Block("small", (0, 1)),
             Block("mid", (2, 3, 4))],
            num_entities=5,
        )
        scheduled = BlockScheduling().process(blocks)
        assert [b.key for b in scheduled] == ["small", "mid", "big"]

    def test_utility_measure(self):
        assert BlockScheduling.utility(1) == 1.0
        assert BlockScheduling.utility(4) == 0.25
        assert BlockScheduling.utility(0) == 0.0

    def test_deterministic_tie_break(self):
        blocks = BlockCollection(
            [Block("b", (0, 1)), Block("a", (2, 3))], num_entities=4
        )
        scheduled = BlockScheduling().process(blocks)
        assert [b.key for b in scheduled] == ["a", "b"]


class TestBlockPruning:
    def _blocks(self):
        # Duplicates live in small blocks; two large useless blocks follow
        # in the schedule.
        return BlockCollection(
            [
                Block("dup1", (0, 1)),
                Block("dup2", (2, 3)),
                Block("noise1", tuple(range(4, 24))),
                Block("noise2", tuple(range(24, 44))),
            ],
            num_entities=44,
        )

    def test_parameter_validated(self):
        with pytest.raises(ValueError):
            BlockPruning(OracleMatcher(DuplicateSet([])), 0)

    def test_early_termination_saves_comparisons(self):
        truth = DuplicateSet([(0, 1), (2, 3)])
        pruning = BlockPruning(
            OracleMatcher(truth), max_comparisons_per_duplicate=10
        )
        result = pruning.process(self._blocks())
        # Both duplicates are found in the two unit blocks; the first noise
        # block blows the overhead budget at its boundary, so the second is
        # never processed.
        assert result.recall(truth) == 1.0
        assert result.processed_blocks == 3
        assert result.total_blocks == 4
        assert result.executed_comparisons < self._blocks().cardinality

    def test_no_termination_with_large_budget(self):
        truth = DuplicateSet([(0, 1), (2, 3)])
        pruning = BlockPruning(
            OracleMatcher(truth), max_comparisons_per_duplicate=10_000
        )
        result = pruning.process(self._blocks())
        assert result.executed_comparisons == self._blocks().cardinality

    def test_redundant_comparisons_propagated(self):
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (0, 1))], num_entities=2
        )
        truth = DuplicateSet([(0, 1)])
        result = BlockPruning(OracleMatcher(truth)).process(blocks)
        assert result.executed_comparisons == 1  # LeCoBI skips the repeat

    def test_precision_property(self):
        truth = DuplicateSet([(0, 1)])
        blocks = BlockCollection([Block("a", (0, 1, 2))], num_entities=3)
        result = BlockPruning(OracleMatcher(truth)).process(blocks)
        assert result.precision == pytest.approx(1 / 3)

    def test_stops_between_blocks_not_mid_run(self):
        # The overhead check happens at block boundaries: a block that
        # starts under budget is fully processed.
        truth = DuplicateSet([(0, 1)])
        blocks = BlockCollection(
            [Block("dup", (0, 1)), Block("noise", tuple(range(2, 12)))],
            num_entities=12,
        )
        result = BlockPruning(
            OracleMatcher(truth), max_comparisons_per_duplicate=5
        ).process(blocks)
        assert result.processed_blocks == 2
        assert result.executed_comparisons == 1 + 45

    def test_empty_collection(self):
        result = BlockPruning(OracleMatcher(DuplicateSet([]))).process(
            BlockCollection([], 0)
        )
        assert result.executed_comparisons == 0
        assert result.total_blocks == 0
