"""End-to-end serve smoke test — the CI "serve smoke" job's workload.

Boots the daemon on a Unix socket, drives 500 mixed upsert/query requests
through the synchronous SDK, asserts candidate equality against an
in-process resolver fed the same sequence, and fails on leaked sockets or
threads.
"""

import threading

import pytest

from repro.blocking import TokenBlocking
from repro.client import ResolverClient
from repro.datamodel.profiles import EntityProfile
from repro.incremental import IncrementalMetaBlocking
from repro.serve import BackgroundServer, ResolverServer

REQUESTS = 500


def _profiles(n: int) -> "list[EntityProfile]":
    first = ["john", "jane", "mary", "peter", "lucy", "frank"]
    last = ["smith", "jones", "brown", "muller", "rossi"]
    return [
        EntityProfile.from_dict(
            f"p{i}",
            {
                "name": f"{first[i % 6]} {last[i % 5]}",
                "city": f"town{i % 9}",
                "year": str(1990 + i % 7),
            },
        )
        for i in range(n)
    ]


def _resolver(scheme: str) -> IncrementalMetaBlocking:
    return IncrementalMetaBlocking(
        TokenBlocking().keys_for, scheme=scheme, k=4
    )


@pytest.mark.parametrize("scheme", ["CBS", "JS"])
def test_serve_smoke_500_mixed_requests(tmp_path, scheme):
    socket_path = tmp_path / "er.sock"
    threads_before = {
        thread.name for thread in threading.enumerate() if thread.is_alive()
    }
    mirror = _resolver(scheme)
    server = ResolverServer(
        _resolver(scheme),
        path=socket_path,
        flush_size=8,
        flush_interval=0.01,
    )
    # Upserts advance through the corpus faster than one profile per
    # request (batches take 5), so generate headroom.
    profiles = _profiles(2 * REQUESTS)
    sent = 0
    with BackgroundServer(server) as background:
        with ResolverClient(background.address, timeout=30) as client:
            position = 0
            while sent < REQUESTS:
                if sent % 10 == 7 and position:
                    # Every 10th request is a read: top-k neighbors of an
                    # already-inserted entity, checked against the mirror.
                    entity_id = (sent * 13) % position
                    assert client.query(entity_id) == mirror.query(entity_id)
                elif sent % 25 == 14:
                    batch = profiles[position : position + 5]
                    entity_ids, lists = client.upsert_many(batch)
                    assert entity_ids == list(
                        range(position, position + len(batch))
                    )
                    assert lists == mirror.add_batch(batch)
                    position += len(batch)
                else:
                    profile = profiles[position]
                    entity_id, candidates = client.upsert(profile)
                    assert entity_id == position
                    assert candidates == mirror.add(profile)
                    position += 1
                sent += 1
            # The daemon's full pruned graph is bit-identical too.
            assert client.candidate_pairs("CNP") == [
                tuple(pair) for pair in mirror.candidate_pairs("CNP")
            ]
            stats = client.stats()
            assert stats["profiles"] == len(mirror)
            assert stats["total_requests"] >= REQUESTS
            summary = client.shutdown()
            assert summary["profiles"] == len(mirror)

    # No leaked resources: the socket file is gone and every serve-side
    # thread (event loop + executor) has exited.
    assert not socket_path.exists()
    leaked = {
        thread.name
        for thread in threading.enumerate()
        if thread.is_alive() and thread.name not in threads_before
    }
    assert not any(
        name.startswith(("repro-serve", "asyncio")) for name in leaked
    ), f"leaked threads: {leaked}"
