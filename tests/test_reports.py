"""Tests for configuration sweeps and recommendations."""

import pytest

from repro.evaluation.reports import (
    RECALL_FLOORS,
    best_for_application,
    render_markdown,
    sweep_configurations,
)


@pytest.fixture(scope="module")
def sweep(request):
    small_dirty = request.getfixturevalue("small_dirty")
    small_dirty_blocks = request.getfixturevalue("small_dirty_blocks")
    return (
        small_dirty,
        sweep_configurations(
            small_dirty_blocks,
            small_dirty.ground_truth,
            algorithms=("WEP", "RcWNP", "RcCNP"),
            schemes=("JS", "CBS"),
        ),
    )


class TestSweep:
    def test_grid_size(self, sweep):
        _, results = sweep
        assert len(results) == 6
        labels = {result.label for result in results}
        assert "RcWNP/JS" in labels

    def test_reports_have_reference(self, sweep):
        _, results = sweep
        assert all(result.report.rr is not None for result in results)

    def test_subset_of_grid(self, small_dirty, small_dirty_blocks):
        results = sweep_configurations(
            small_dirty_blocks,
            small_dirty.ground_truth,
            algorithms=("WEP",),
            schemes=("JS",),
        )
        assert len(results) == 1
        assert results[0].label == "WEP/JS"


class TestBestForApplication:
    def test_picks_highest_pq_above_floor(self, sweep):
        _, results = sweep
        best = best_for_application(results, "efficiency-intensive")
        assert best is not None
        assert best.report.pc >= RECALL_FLOORS["efficiency-intensive"]
        for other in results:
            if other.report.pc >= RECALL_FLOORS["efficiency-intensive"]:
                assert best.report.pq >= other.report.pq

    def test_effectiveness_floor_stricter(self, sweep):
        _, results = sweep
        efficiency = best_for_application(results, "efficiency-intensive")
        effectiveness = best_for_application(results, "effectiveness-intensive")
        if effectiveness is not None and efficiency is not None:
            assert effectiveness.report.pc >= efficiency.report.pc - 1e-9 or (
                effectiveness.report.pc >= 0.95
            )

    def test_explicit_floor_overrides(self, sweep):
        _, results = sweep
        none_qualify = best_for_application(results, recall_floor=1.01)
        assert none_qualify is None

    def test_unknown_application(self, sweep):
        _, results = sweep
        with pytest.raises(ValueError, match="unknown application"):
            best_for_application(results, "quantum")


class TestRenderMarkdown:
    def test_table_structure(self, sweep):
        _, results = sweep
        table = render_markdown(results)
        lines = table.splitlines()
        assert lines[0].startswith("| configuration ")
        assert len(lines) == 2 + len(results)

    def test_sorted_by_pq(self, sweep):
        _, results = sweep
        table = render_markdown(results)
        best = max(results, key=lambda r: r.report.pq)
        assert best.label in table.splitlines()[2]
