"""Unit tests for the ER output clustering algorithms."""

import pytest

from repro.matching.clustering import connected_components
from repro.matching.er_clustering import (
    center_clustering,
    merge_center_clustering,
    unique_mapping_clustering,
)


class TestCenterClustering:
    def test_simple_star(self):
        scored = [(0, 1, 0.9), (0, 2, 0.8)]
        assert center_clustering(scored, 3) == [[0, 1, 2]]

    def test_members_do_not_recruit(self):
        # 1 becomes member of 0's cluster; the 1-2 edge is ignored, so 2
        # stays out (unlike transitive closure).
        scored = [(0, 1, 0.9), (1, 2, 0.8)]
        assert center_clustering(scored, 3) == [[0, 1]]
        assert connected_components([(0, 1), (1, 2)], 3) == [[0, 1, 2]]

    def test_best_first_decides_centers(self):
        # The strongest edge is processed first: 1 becomes center with
        # member 2; the weaker 0-2 edge then hits a member and is ignored.
        scored = [(0, 2, 0.5), (1, 2, 0.9)]
        assert center_clustering(scored, 3) == [[1, 2]]

    def test_center_recruits_via_weaker_edge(self):
        # 1 is the center of {1,2}; the weaker 0-1 edge attaches 0.
        scored = [(0, 1, 0.5), (1, 2, 0.9)]
        assert center_clustering(scored, 3) == [[0, 1, 2]]

    def test_two_separate_clusters(self):
        scored = [(0, 1, 0.9), (2, 3, 0.8)]
        assert center_clustering(scored, 4) == [[0, 1], [2, 3]]

    def test_deterministic_tie_break(self):
        scored = [(2, 3, 0.5), (0, 1, 0.5)]
        first = center_clustering(scored, 4)
        second = center_clustering(list(reversed(scored)), 4)
        assert first == second == [[0, 1], [2, 3]]

    def test_validates_pairs(self):
        with pytest.raises(ValueError):
            center_clustering([(0, 9, 1.0)], 3)
        with pytest.raises(ValueError):
            center_clustering([(1, 1, 1.0)], 3)

    def test_empty(self):
        assert center_clustering([], 5) == []


class TestMergeCenterClustering:
    def test_merges_through_members(self):
        # 0-1 cluster, 2-3 cluster, then the 1-2 member-member edge is
        # ignored, but a center-member edge 0-3 merges the stars.
        scored = [(0, 1, 0.9), (2, 3, 0.8), (0, 3, 0.7)]
        assert merge_center_clustering(scored, 4) == [[0, 1, 2, 3]]

    def test_member_member_edges_ignored(self):
        scored = [(0, 1, 0.9), (2, 3, 0.8), (1, 3, 0.7)]
        assert merge_center_clustering(scored, 4) == [[0, 1], [2, 3]]

    def test_unassigned_joins_member(self):
        # 4 attaches to member 1 (the merge-center extension over center).
        scored = [(0, 1, 0.9), (1, 4, 0.8)]
        assert merge_center_clustering(scored, 5) == [[0, 1, 4]]

    def test_at_least_as_coarse_as_center(self):
        scored = [(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7), (0, 3, 0.6)]
        center = center_clustering(scored, 4)
        merged = merge_center_clustering(scored, 4)
        center_entities = {e for cluster in center for e in cluster}
        merged_entities = {e for cluster in merged for e in cluster}
        assert center_entities <= merged_entities

    def test_empty(self):
        assert merge_center_clustering([], 5) == []


class TestUniqueMappingClustering:
    def test_greedy_one_to_one(self):
        # Entity 0 prefers 3 (0.9); entity 1 then cannot take 3.
        scored = [(0, 3, 0.9), (1, 3, 0.8), (1, 4, 0.7)]
        assert unique_mapping_clustering(scored, split=3) == {(0, 3), (1, 4)}

    def test_rejects_same_side_pairs(self):
        with pytest.raises(ValueError, match="does not link"):
            unique_mapping_clustering([(0, 1, 0.9)], split=3)

    def test_each_entity_matched_once(self):
        scored = [
            (0, 3, 0.9),
            (0, 4, 0.85),
            (1, 3, 0.8),
            (1, 4, 0.75),
            (2, 5, 0.7),
        ]
        result = unique_mapping_clustering(scored, split=3)
        lefts = [left for left, _ in result]
        rights = [right for _, right in result]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))
        assert (0, 3) in result and (1, 4) in result and (2, 5) in result

    def test_deterministic_under_ties(self):
        scored = [(0, 3, 0.5), (1, 3, 0.5)]
        assert unique_mapping_clustering(scored, split=2) == {(0, 3)}

    def test_empty(self):
        assert unique_mapping_clustering([], split=3) == set()

    def test_improves_precision_on_clean_clean(
        self, small_clean_clean, small_clean_blocks
    ):
        # Score every distinct comparison with Jaccard; 1-1 mapping beats
        # thresholding on precision at similar recall.
        from repro.matching import JaccardMatcher

        matcher = JaccardMatcher(small_clean_clean)
        scored = [
            (left, right, matcher.similarity(left, right))
            for left, right in small_clean_blocks.distinct_comparisons()
        ]
        scored = [entry for entry in scored if entry[2] >= 0.2]
        mapping = unique_mapping_clustering(scored, small_clean_clean.split)
        detected = small_clean_clean.ground_truth.detected_in(mapping)
        threshold_pairs = {(l, r) for l, r, _ in scored}
        detected_threshold = small_clean_clean.ground_truth.detected_in(
            threshold_pairs
        )
        precision_mapping = len(detected) / len(mapping)
        precision_threshold = len(detected_threshold) / len(threshold_pairs)
        assert precision_mapping > precision_threshold
