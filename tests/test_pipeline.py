"""Unit tests for the meta_block facade and the full workflow."""

import pytest

from repro.blocking import CanopyClustering, SortedNeighborhoodBlocking, TokenBlocking
from repro.core.pipeline import (
    MetaBlockingWorkflow,
    get_pruning,
    meta_block,
)
from repro.core.pruning import PruningAlgorithm, WeightedEdgePruning
from repro.evaluation import evaluate


class TestMetaBlockFacade:
    def test_defaults_produce_result(self, small_dirty, small_dirty_blocks):
        result = meta_block(small_dirty_blocks)
        assert result.comparisons.cardinality > 0
        assert result.filtered_blocks is not None
        assert result.overhead_seconds > 0

    def test_no_filtering(self, small_dirty_blocks):
        result = meta_block(small_dirty_blocks, block_filtering_ratio=None)
        assert result.filtered_blocks is None
        assert result.filtering_seconds == 0.0

    def test_backend_selection(self, example_blocks):
        optimized = meta_block(example_blocks, backend="optimized")
        original = meta_block(example_blocks, backend="original")
        assert sorted(optimized.comparisons.pairs) == sorted(
            original.comparisons.pairs
        )

    def test_unknown_backend(self, example_blocks):
        with pytest.raises(ValueError, match="unknown weighting backend"):
            meta_block(example_blocks, backend="quantum")

    def test_unknown_algorithm(self, example_blocks):
        with pytest.raises(ValueError, match="unknown pruning algorithm"):
            meta_block(example_blocks, algorithm="XYZ")

    def test_algorithm_instance_passthrough(self, example_blocks):
        algorithm = WeightedEdgePruning(threshold=0.25)
        result = meta_block(
            example_blocks, algorithm=algorithm, block_filtering_ratio=None
        )
        assert result.algorithm is algorithm
        assert result.comparisons.cardinality == 5

    def test_get_pruning_resolution(self):
        assert isinstance(get_pruning("WEP"), PruningAlgorithm)
        instance = WeightedEdgePruning()
        assert get_pruning(instance) is instance


class TestMetaBlockingWorkflow:
    def test_end_to_end_dirty(self, small_dirty):
        workflow = MetaBlockingWorkflow(
            TokenBlocking(), scheme="JS", algorithm="RcWNP"
        )
        result = workflow.run(small_dirty)
        report = evaluate(
            result.comparisons,
            small_dirty.ground_truth,
            reference_cardinality=small_dirty.brute_force_comparisons,
        )
        assert report.pc > 0.7
        assert report.rr is not None and report.rr > 0.9
        assert "blocking" in result.stage_seconds
        assert "purging" in result.stage_seconds

    def test_end_to_end_clean_clean(self, small_clean_clean):
        workflow = MetaBlockingWorkflow(
            TokenBlocking(), scheme="ECBS", algorithm="CNP"
        )
        result = workflow.run(small_clean_clean)
        report = evaluate(result.comparisons, small_clean_clean.ground_truth)
        assert report.pc > 0.7

    def test_rejects_redundancy_neutral_blocking(self):
        with pytest.raises(ValueError, match="not redundancy-positive"):
            MetaBlockingWorkflow(SortedNeighborhoodBlocking())

    def test_rejects_redundancy_negative_blocking(self):
        with pytest.raises(ValueError, match="not redundancy-positive"):
            MetaBlockingWorkflow(CanopyClustering())

    def test_overhead_includes_all_stages(self, small_dirty):
        workflow = MetaBlockingWorkflow(TokenBlocking())
        result = workflow.run(small_dirty)
        assert result.overhead_seconds >= (
            result.filtering_seconds + result.pruning_seconds
        )
