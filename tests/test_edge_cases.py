"""Edge-case and failure-injection tests across the library."""

import pytest

from repro.blocking import TokenBlocking
from repro.blockprocessing import BlockPurging, ComparisonPropagation, EntityIndex
from repro.core import (
    BlockFiltering,
    GraphFreeMetaBlocking,
    OptimizedEdgeWeighting,
    meta_block,
)
from repro.core.pruning import PRUNING_ALGORITHMS
from repro.datamodel.blocks import Block, BlockCollection, ComparisonCollection
from repro.datamodel.dataset import CleanCleanERDataset, DirtyERDataset
from repro.datamodel.groundtruth import DuplicateSet
from repro.datamodel.profiles import EntityCollection, EntityProfile
from repro.evaluation import evaluate, profile_blocks
from repro.utils.tokenize import tokenize


class TestUnicodeAndOddText:
    def test_tokenize_unicode(self):
        assert tokenize("Ünïcode-Tëst") == ["ünïcode", "tëst"]

    def test_tokenize_emoji_and_symbols(self):
        assert tokenize("hello 🙂 world") == ["hello", "world"]

    def test_blocking_with_unicode_values(self):
        collection = EntityCollection(
            [
                EntityProfile.from_dict("a", {"name": "José García"}),
                EntityProfile.from_dict("b", {"nom": "José Garcìa"}),
            ]
        )
        dataset = DirtyERDataset(collection, DuplicateSet([(0, 1)]))
        blocks = TokenBlocking().build(dataset)
        assert evaluate(blocks, dataset.ground_truth).pc == 1.0


class TestDegeneratePipelines:
    def _empty_dirty(self):
        return DirtyERDataset(EntityCollection([]), DuplicateSet([]))

    def test_empty_dataset_through_pipeline(self):
        dataset = self._empty_dirty()
        blocks = TokenBlocking().build(dataset)
        result = meta_block(blocks, algorithm="RcWNP")
        assert result.comparisons.cardinality == 0

    def test_single_entity_dataset(self):
        collection = EntityCollection(
            [EntityProfile.from_dict("only", {"t": "alone here"})]
        )
        dataset = DirtyERDataset(collection, DuplicateSet([]))
        blocks = TokenBlocking().build(dataset)
        assert len(blocks) == 0
        assert dataset.brute_force_comparisons == 0

    def test_all_identical_profiles(self):
        collection = EntityCollection(
            [
                EntityProfile.from_dict(f"p{i}", {"t": "same text everywhere"})
                for i in range(5)
            ]
        )
        dataset = DirtyERDataset(
            collection, DuplicateSet.from_clusters([range(5)])
        )
        blocks = TokenBlocking().build(dataset)
        # Every pair co-occurs in every block: the graph is complete with
        # uniform weights, and every algorithm must still terminate.
        for name in PRUNING_ALGORITHMS:
            result = meta_block(blocks, algorithm=name, block_filtering_ratio=None)
            report = evaluate(result.comparisons, dataset.ground_truth)
            assert 0.0 <= report.pc <= 1.0

    def test_profiles_with_no_tokens(self):
        collection = EntityCollection(
            [
                EntityProfile.from_dict("a", {"t": "---"}),
                EntityProfile.from_dict("b", {"t": "..."}),
            ]
        )
        dataset = DirtyERDataset(collection, DuplicateSet([(0, 1)]))
        blocks = TokenBlocking().build(dataset)
        assert len(blocks) == 0
        report = evaluate(blocks, dataset.ground_truth)
        assert report.pc == 0.0

    def test_clean_clean_with_single_profile_sides(self):
        left = EntityCollection([EntityProfile.from_dict("a", {"t": "x y"})])
        right = EntityCollection([EntityProfile.from_dict("b", {"t": "x z"})])
        dataset = CleanCleanERDataset(left, right, DuplicateSet([(0, 1)]))
        blocks = TokenBlocking().build(dataset)
        result = meta_block(blocks, algorithm="RcWNP", block_filtering_ratio=None)
        assert result.comparisons.distinct_comparisons() == {(0, 1)}


class TestGraphFreeDegenerate:
    def test_on_empty_blocks(self):
        result = GraphFreeMetaBlocking(0.5).process(BlockCollection([], 0))
        assert result.cardinality == 0

    def test_on_single_block(self):
        blocks = BlockCollection([Block("only", (0, 1))], num_entities=2)
        result = GraphFreeMetaBlocking(0.5).process(blocks)
        assert result.distinct_comparisons() == {(0, 1)}


class TestSelfConsistency:
    def test_purging_then_filtering_commutes_on_small_blocks(self):
        # When no block is oversized, purging is the identity and any
        # composition with filtering gives filtering alone.
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (1, 2)), Block("c", (0, 2))],
            num_entities=10,
        )
        filtered = BlockFiltering(0.5).process(blocks)
        purged_then_filtered = BlockFiltering(0.5).process(
            BlockPurging().process(blocks)
        )
        assert list(filtered) == list(purged_then_filtered)

    def test_propagation_idempotent(self, small_dirty_blocks):
        once = ComparisonPropagation().process(small_dirty_blocks)
        twice = ComparisonPropagation().process(once.to_blocks())
        assert once.distinct_comparisons() == twice.distinct_comparisons()

    def test_entity_index_matches_block_assignments(self, small_dirty_blocks):
        index = EntityIndex(small_dirty_blocks)
        assignments = small_dirty_blocks.block_assignments()
        for entity, count in assignments.items():
            assert index.num_blocks_of(entity) == count

    def test_profile_blocks_consistent_with_evaluate(
        self, small_dirty, small_dirty_blocks
    ):
        profile = profile_blocks(small_dirty_blocks, small_dirty.ground_truth)
        report = evaluate(small_dirty_blocks, small_dirty.ground_truth)
        assert profile.pc == report.pc
        assert profile.pq == report.pq
        assert profile.cardinality == report.cardinality


class TestComparisonCollectionEdgeCases:
    def test_self_pairs_preserved_as_given(self):
        # ComparisonCollection canonicalises order but does not validate
        # self-pairs (that is the ground truth's job); evaluation treats
        # them as non-matching comparisons.
        collection = ComparisonCollection([(1, 0)], 2)
        assert collection.pairs == [(0, 1)]

    def test_evaluation_with_zero_reference(self):
        truth = DuplicateSet([(0, 1)])
        report = evaluate(
            ComparisonCollection([(0, 1)], 2), truth, reference_cardinality=0
        )
        assert report.rr is None


class TestWeightingDegenerate:
    def test_blocks_with_zero_cardinality_members(self):
        # An invalid (singleton) block contributes no comparisons and no
        # crash, even if a caller forgot only_valid().
        blocks = BlockCollection(
            [Block("singleton", (0,)), Block("pair", (0, 1))], num_entities=2
        )
        weighting = OptimizedEdgeWeighting(blocks, "ARCS")
        edges = list(weighting.iter_edges())
        assert len(edges) == 1
        assert edges[0][2] > 0

    def test_ejs_on_single_edge_graph(self):
        blocks = BlockCollection([Block("only", (0, 1))], num_entities=2)
        weighting = OptimizedEdgeWeighting(blocks, "EJS")
        ((left, right, weight),) = list(weighting.iter_edges())
        # |E_B| = 1 and both degrees are 1: log10(1/1) = 0.
        assert weight == 0.0
