"""Unit tests for the Iterative Blocking baseline."""

from repro.blockprocessing.iterative_blocking import IterativeBlocking
from repro.datamodel.blocks import Block, BlockCollection
from repro.datamodel.groundtruth import DuplicateSet
from repro.matching import OracleMatcher


class TestIterativeBlocking:
    def test_skips_repeated_matched_pairs(self):
        # (0,1) are duplicates co-occurring in two blocks: the second
        # encounter must be skipped (match propagation).
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (0, 1))], num_entities=2
        )
        truth = DuplicateSet([(0, 1)])
        result = IterativeBlocking(OracleMatcher(truth)).process(blocks, truth)
        assert result.executed_comparisons == 1
        assert result.detected_duplicates == {(0, 1)}

    def test_transitive_propagation(self):
        # After 0~1 and 1~2 merge, the 0-2 comparison is already resolved.
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (1, 2)), Block("c", (0, 2))],
            num_entities=3,
        )
        truth = DuplicateSet.from_clusters([[0, 1, 2]])
        result = IterativeBlocking(OracleMatcher(truth)).process(blocks, truth)
        assert result.executed_comparisons == 2
        # The third pair is *detected* via the transitive merge even though
        # its comparison was never executed.
        assert result.matches == {(0, 1), (1, 2)}

    def test_non_matches_always_executed(self):
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (0, 1))], num_entities=2
        )
        truth = DuplicateSet([(0, 1)])
        # Empty oracle: nothing matches, both comparisons run.
        result = IterativeBlocking(OracleMatcher(DuplicateSet([]))).process(
            blocks, truth
        )
        assert result.executed_comparisons == 2
        assert result.detected_duplicates == set()

    def test_processing_order_smallest_first(self):
        # The big block is processed after the small one, so the duplicate
        # is found cheaply in the small block first.
        blocks = BlockCollection(
            [Block("big", (0, 1, 2, 3, 4)), Block("small", (0, 1))],
            num_entities=5,
        )
        truth = DuplicateSet([(0, 1)])
        result = IterativeBlocking(OracleMatcher(truth)).process(blocks, truth)
        # 1 comparison in "small" + the 9 non-duplicate pairs of "big".
        assert result.executed_comparisons == 10

    def test_clean_clean_ideal_skips_resolved_entities(self):
        blocks = BlockCollection(
            [Block("a", (0,), (2,)), Block("b", (0, 1), (2, 3))],
            num_entities=4,
        )
        truth = DuplicateSet([(0, 2), (1, 3)])
        result = IterativeBlocking(
            OracleMatcher(truth), clean_clean_ideal=True
        ).process(blocks, truth)
        # (0,2) matched in block a; in block b only (1,3) is attempted
        # because 0 and 2 are already resolved.
        assert result.executed_comparisons == 2
        assert result.detected_duplicates == {(0, 2), (1, 3)}

    def test_precision_and_recall_properties(self):
        blocks = BlockCollection(
            [Block("a", (0, 1, 2))], num_entities=3
        )
        truth = DuplicateSet([(0, 1)])
        result = IterativeBlocking(OracleMatcher(truth)).process(blocks, truth)
        assert result.recall(truth) == 1.0
        assert result.precision == 1 / 3

    def test_empty_blocks(self):
        truth = DuplicateSet([(0, 1)])
        result = IterativeBlocking(OracleMatcher(truth)).process(
            BlockCollection([], num_entities=2), truth
        )
        assert result.executed_comparisons == 0
        assert result.recall(truth) == 0.0
