"""Unit tests for Comparison Propagation."""

import pytest

from repro.blockprocessing.comparison_propagation import ComparisonPropagation
from repro.datamodel.blocks import Block, BlockCollection
from repro.evaluation import evaluate


class TestComparisonPropagation:
    def test_removes_redundant_comparisons(self):
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (0, 1)), Block("c", (0, 1, 2))],
            num_entities=3,
        )
        result = ComparisonPropagation().process(blocks)
        assert result.cardinality == 3
        assert result.distinct_comparisons() == {(0, 1), (0, 2), (1, 2)}

    def test_no_redundancy_is_identity(self):
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (2, 3))], num_entities=4
        )
        result = ComparisonPropagation().process(blocks)
        assert result.distinct_comparisons() == {(0, 1), (2, 3)}

    def test_recall_preserved(self, small_dirty, small_dirty_blocks):
        before = evaluate(small_dirty_blocks, small_dirty.ground_truth)
        after = evaluate(
            ComparisonPropagation().process(small_dirty_blocks),
            small_dirty.ground_truth,
        )
        assert after.pc == before.pc
        assert after.cardinality <= small_dirty_blocks.cardinality

    def test_bilateral_blocks(self):
        blocks = BlockCollection(
            [Block("a", (0,), (2, 3)), Block("b", (0, 1), (2,))],
            num_entities=4,
        )
        result = ComparisonPropagation().process(blocks)
        assert result.distinct_comparisons() == {(0, 2), (0, 3), (1, 2)}
        assert result.cardinality == 3

    def test_strategies_agree_on_synthetic(self, small_dirty_blocks):
        scan = ComparisonPropagation("scan").process(small_dirty_blocks)
        lecobi = ComparisonPropagation("lecobi").process(small_dirty_blocks)
        assert scan.distinct_comparisons() == lecobi.distinct_comparisons()
        assert scan.cardinality == lecobi.cardinality

    def test_strategies_agree_on_bilateral(self, small_clean_blocks):
        scan = ComparisonPropagation("scan").process(small_clean_blocks)
        lecobi = ComparisonPropagation("lecobi").process(small_clean_blocks)
        assert scan.distinct_comparisons() == lecobi.distinct_comparisons()

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            ComparisonPropagation("magic")

    def test_empty_collection(self):
        result = ComparisonPropagation().process(BlockCollection([], 0))
        assert result.cardinality == 0
