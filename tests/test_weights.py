"""Unit tests for the five weighting schemes (paper Figure 4)."""

import math

import pytest

from repro.core.weights import (
    ARCS,
    CBS,
    ECBS,
    EJS,
    JS,
    WEIGHTING_SCHEMES,
    get_scheme,
)


def _weight(scheme, **kwargs):
    defaults = dict(
        common_blocks=2,
        arcs_sum=0.0,
        blocks_i=3,
        blocks_j=5,
        degree_i=4,
        degree_j=2,
        total_blocks=100,
        total_edges=50,
    )
    defaults.update(kwargs)
    return scheme.weight(**defaults)


class TestCBS:
    def test_counts_common_blocks(self):
        assert _weight(CBS(), common_blocks=7) == 7.0

    def test_zero(self):
        assert _weight(CBS(), common_blocks=0) == 0.0


class TestJS:
    def test_jaccard_formula(self):
        assert _weight(JS(), common_blocks=2, blocks_i=3, blocks_j=5) == (
            pytest.approx(2 / 6)
        )

    def test_identical_block_lists(self):
        assert _weight(JS(), common_blocks=4, blocks_i=4, blocks_j=4) == 1.0

    def test_zero_denominator(self):
        assert _weight(JS(), common_blocks=0, blocks_i=0, blocks_j=0) == 0.0

    def test_range(self):
        for common in range(1, 4):
            value = _weight(JS(), common_blocks=common, blocks_i=4, blocks_j=5)
            assert 0.0 < value <= 1.0


class TestECBS:
    def test_formula(self):
        expected = 2 * math.log10(100 / 3) * math.log10(100 / 5)
        assert _weight(ECBS(), common_blocks=2) == pytest.approx(expected)

    def test_discounts_prolific_profiles(self):
        few_blocks = _weight(ECBS(), blocks_i=2, blocks_j=2)
        many_blocks = _weight(ECBS(), blocks_i=50, blocks_j=50)
        assert few_blocks > many_blocks

    def test_zero_common(self):
        assert _weight(ECBS(), common_blocks=0) == 0.0


class TestEJS:
    def test_formula(self):
        jaccard = 2 / 6
        expected = jaccard * math.log10(50 / 4) * math.log10(50 / 2)
        assert _weight(EJS(), common_blocks=2) == pytest.approx(expected)

    def test_discounts_high_degree(self):
        low_degree = _weight(EJS(), degree_i=2, degree_j=2)
        high_degree = _weight(EJS(), degree_i=40, degree_j=40)
        assert low_degree > high_degree

    def test_requires_degrees_flag(self):
        assert EJS.uses_degrees is True
        assert JS.uses_degrees is False

    def test_zero_guards(self):
        assert _weight(EJS(), degree_i=0) == 0.0
        assert _weight(EJS(), total_edges=0) == 0.0


class TestARCS:
    def test_returns_accumulated_sum(self):
        assert _weight(ARCS(), arcs_sum=0.75) == 0.75

    def test_uses_arcs_flag(self):
        assert ARCS.uses_arcs_sum is True
        assert CBS.uses_arcs_sum is False

    def test_smaller_blocks_weigh_more(self):
        # Sharing two small blocks beats sharing two huge ones.
        small = _weight(ARCS(), arcs_sum=1.0 + 1.0)
        huge = _weight(ARCS(), arcs_sum=1e-3 + 1e-3)
        assert small > huge


class TestRegistry:
    def test_all_five_schemes(self):
        assert set(WEIGHTING_SCHEMES) == {"ARCS", "CBS", "ECBS", "JS", "EJS"}

    def test_get_scheme_by_name(self):
        assert isinstance(get_scheme("js"), JS)
        assert isinstance(get_scheme("ARCS"), ARCS)

    def test_get_scheme_passthrough(self):
        scheme = CBS()
        assert get_scheme(scheme) is scheme

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown weighting scheme"):
            get_scheme("nope")


class TestX2:
    def _x2(self, **kwargs):
        from repro.core.weights import X2

        return _weight(X2(), **kwargs)

    def test_independence_scores_zero_ish(self):
        # When observed co-occurrence equals the expectation, chi2 = 0.
        # |Bi|=10, |Bj|=10, |B|=100 -> expected common = 1.
        value = self._x2(
            common_blocks=1, blocks_i=10, blocks_j=10, total_blocks=100
        )
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_strong_cooccurrence_scores_high(self):
        dependent = self._x2(
            common_blocks=10, blocks_i=10, blocks_j=10, total_blocks=100
        )
        independent = self._x2(
            common_blocks=2, blocks_i=10, blocks_j=10, total_blocks=100
        )
        assert dependent > independent > 0

    def test_degenerate_table(self):
        # All blocks contain both entities: denominator collapses to 0.
        assert self._x2(
            common_blocks=5, blocks_i=5, blocks_j=5, total_blocks=5
        ) == 0.0

    def test_resolved_by_get_scheme_but_not_in_core_registry(self):
        from repro.core.weights import (
            EXTRA_WEIGHTING_SCHEMES,
            WEIGHTING_SCHEMES,
            X2,
            get_scheme,
        )

        assert isinstance(get_scheme("x2"), X2)
        assert "X2" not in WEIGHTING_SCHEMES
        assert "X2" in EXTRA_WEIGHTING_SCHEMES

    def test_usable_end_to_end(self, example_blocks):
        from repro.core import meta_block

        result = meta_block(
            example_blocks, scheme="X2", algorithm="RcWNP",
            block_filtering_ratio=None,
        )
        assert result.comparisons.cardinality > 0

    def test_backends_agree_on_x2(self, example_blocks):
        from repro.core.edge_weighting import (
            OptimizedEdgeWeighting,
            OriginalEdgeWeighting,
        )

        optimized = sorted(OptimizedEdgeWeighting(example_blocks, "X2").iter_edges())
        original = sorted(OriginalEdgeWeighting(example_blocks, "X2").iter_edges())
        assert optimized == pytest.approx(original)
