"""Tests for the shared-memory Entity Index and the array-pack layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockprocessing.entity_index import EntityIndex, SharedEntityIndex
from repro.core.edge_weighting import (
    OptimizedEdgeWeighting,
    OriginalEdgeWeighting,
)
from repro.core.vectorized import VectorizedEdgeWeighting
from repro.utils.shm import (
    SHM_NAME_PREFIX,
    SharedArrayPack,
    list_segments,
    segment_name,
)

BACKENDS = (
    OriginalEdgeWeighting,
    OptimizedEdgeWeighting,
    VectorizedEdgeWeighting,
)

INDEX_ARRAYS = (
    "indptr",
    "block_indices",
    "block_counts",
    "member_indptr1",
    "members1",
    "member_indptr2",
    "members2",
    "inverse_cardinality_array",
    "second_side_mask",
)


class TestSharedArrayPack:
    def test_publish_attach_round_trip(self, shm_leak_check):
        arrays = {
            "ints": np.arange(17, dtype=np.int64),
            "floats": np.linspace(0.0, 1.0, 5),
            "empty": np.empty(0, dtype=np.int64),
            "bools": np.array([True, False, True]),
        }
        with SharedArrayPack.publish(arrays) as pack:
            attached = SharedArrayPack.attach(pack.spec)
            try:
                for key, array in arrays.items():
                    assert np.array_equal(attached.arrays[key], array)
                    assert attached.arrays[key].dtype == array.dtype
                    assert not attached.arrays[key].flags.writeable
            finally:
                attached.close()

    def test_segment_names_carry_prefix(self):
        assert segment_name().startswith(SHM_NAME_PREFIX)

    def test_destroy_unlinks_name(self):
        pack = SharedArrayPack.publish({"x": np.ones(3)})
        name = pack.spec.name
        assert name in list_segments()
        pack.destroy()
        assert name not in list_segments()
        pack.destroy()  # idempotent

    def test_attached_close_keeps_owner_segment(self):
        pack = SharedArrayPack.publish({"x": np.arange(4)})
        try:
            attached = SharedArrayPack.attach(pack.spec)
            attached.close()
            attached.unlink()  # non-owner: must be a no-op
            assert pack.spec.name in list_segments()
            assert np.array_equal(pack.arrays["x"], np.arange(4))
        finally:
            pack.destroy()


class TestSharedEntityIndex:
    def test_arrays_round_trip(self, example_blocks, shm_leak_check):
        index = EntityIndex(example_blocks)
        with index.to_shared() as shared:
            attached = SharedEntityIndex.attach(shared.spec)
            try:
                for key in INDEX_ARRAYS:
                    assert np.array_equal(
                        getattr(attached, key), getattr(index, key)
                    ), key
                assert attached.num_entities == index.num_entities
                assert attached.num_blocks == index.num_blocks
                assert attached.is_bilateral == index.is_bilateral
                assert attached.blocks is None
            finally:
                attached.close()

    def test_unilateral_side2_aliases_side1(self, example_blocks):
        index = EntityIndex(example_blocks)
        assert not index.is_bilateral
        with index.to_shared() as shared:
            # The pack must not duplicate the side-2 member arrays.
            keys = {entry.key for entry in shared.spec.pack.entries}
            assert "members2" not in keys
            assert shared.members2 is shared.members1
            assert shared.member_indptr2 is shared.member_indptr1

    def test_api_surface_matches_entity_index(self, small_clean_blocks):
        blocks = small_clean_blocks.sorted_by_cardinality()
        index = EntityIndex(blocks)
        assert index.is_bilateral
        with index.to_shared() as shared:
            assert shared.placed_entities() == index.placed_entities()
            for entity in index.placed_entities()[:50]:
                assert list(shared.block_list(entity)) == list(
                    index.block_list(entity)
                )
                assert np.array_equal(
                    shared.block_slice(entity), index.block_slice(entity)
                )
                assert shared.num_blocks_of(entity) == index.num_blocks_of(entity)
                assert shared.in_second_collection(
                    entity
                ) == index.in_second_collection(entity)
                for position in index.block_list(entity):
                    assert list(shared.cooccurring(entity, position)) == list(
                        index.cooccurring(entity, position)
                    )

    def test_destroy_unlinks(self, example_blocks):
        shared = EntityIndex(example_blocks).to_shared()
        name = shared.spec.pack.name
        assert name in list_segments()
        shared.destroy()
        assert name not in list_segments()


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda cls: cls.__name__)
@pytest.mark.parametrize("scheme", ["ARCS", "CBS", "ECBS", "JS", "EJS"])
class TestAttachedBackendEquivalence:
    """Backends rebuilt over an attached index match the originals exactly."""

    def test_neighborhoods_and_emitted_edges(
        self, example_blocks, backend, scheme, shm_leak_check
    ):
        reference = backend(example_blocks, scheme)
        with reference.index.to_shared() as shared:
            attached = SharedEntityIndex.attach(shared.spec)
            try:
                rebuilt = backend._from_shared_index(attached, scheme)
                if reference.scheme.uses_degrees:
                    reference._prepare_scheme_inputs()
                    rebuilt._degrees = list(reference._degrees)
                    rebuilt._total_edges = reference._total_edges
                assert rebuilt.nodes() == reference.nodes()
                for entity in reference.nodes():
                    got = rebuilt.neighborhood_arrays(entity)
                    expected = reference.neighborhood_arrays(entity)
                    assert np.array_equal(got[0], expected[0])
                    assert np.array_equal(got[1], expected[1])
                    got = rebuilt.emitted_arrays(entity)
                    expected = reference.emitted_arrays(entity)
                    assert np.array_equal(got[0], expected[0])
                    assert np.array_equal(got[1], expected[1])
                    assert rebuilt.count_neighbors(
                        entity
                    ) == reference.count_neighbors(entity)
            finally:
                attached.close()
