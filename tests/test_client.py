"""Client-SDK behaviour tests: connect retry, timeout, fault injection."""

import socket
import threading
import time

import pytest

from repro.blocking import TokenBlocking
from repro.client import (
    ClientError,
    ConnectFailed,
    RequestTimeout,
    ResolverClient,
    ServerError,
)
from repro.core.faults import Fault, injected_faults
from repro.datamodel.profiles import EntityProfile
from repro.incremental import IncrementalMetaBlocking
from repro.serve import BackgroundServer, ResolverServer
from repro.serve.protocol import (
    ERR_INTERNAL,
    ERR_OVERLOADED,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
)


def _profile(identifier: str, text: str) -> EntityProfile:
    return EntityProfile.from_dict(identifier, {"text": text})


def _resolver() -> IncrementalMetaBlocking:
    return IncrementalMetaBlocking(TokenBlocking().keys_for, scheme="CBS", k=3)


class TestConnect:
    def test_connect_failed_without_server(self, tmp_path):
        client = ResolverClient(
            tmp_path / "nowhere.sock", timeout=1, connect_retries=0
        )
        with pytest.raises(ConnectFailed, match="could not connect"):
            client.ping()

    def test_connect_retries_until_server_appears(self, tmp_path):
        path = tmp_path / "late.sock"
        instance = ResolverServer(_resolver(), path=path)
        background = BackgroundServer(instance)

        def boot_late() -> None:
            time.sleep(0.3)
            background.__enter__()

        thread = threading.Thread(target=boot_late)
        thread.start()
        try:
            with ResolverClient(
                path, timeout=10, connect_retries=20, retry_backoff=0.05
            ) as client:
                assert client.ping()["pong"] is True
        finally:
            thread.join(timeout=10)
            background.stop()

    def test_close_is_idempotent(self, tmp_path):
        instance = ResolverServer(_resolver(), path=tmp_path / "er.sock")
        with BackgroundServer(instance) as background:
            client = ResolverClient(background.address, timeout=10)
            client.ping()
            client.close()
            client.close()
            # A closed client reconnects lazily on the next call.
            assert client.ping()["pong"] is True
            client.close()


class TestFaultInjection:
    def test_delay_fault_times_out_then_recovers(self, tmp_path):
        instance = ResolverServer(_resolver(), path=tmp_path / "er.sock")
        # Ordinal 0 is the first dispatched request: only it is delayed.
        with injected_faults(
            Fault(op="delay", task="serve:query", chunk=0, seconds=1.0)
        ):
            with BackgroundServer(instance) as background:
                with ResolverClient(
                    background.address, timeout=0.15
                ) as client:
                    with pytest.raises(RequestTimeout, match="query"):
                        client.query(0)
                    # Let the dispatcher finish sleeping off the injected
                    # delay — it is single-threaded, so the next request
                    # would otherwise queue behind it and time out too.
                    time.sleep(1.0)
                    # The timeout dropped the connection; the next call
                    # reconnects and (ordinal 1, no fault) succeeds.
                    with pytest.raises(ServerError) as excinfo:
                        client.query(0)  # empty resolver: unknown entity
                    assert excinfo.value.code != ERR_INTERNAL

    def test_error_fault_surfaces_as_server_error(self, tmp_path):
        instance = ResolverServer(_resolver(), path=tmp_path / "er.sock")
        with injected_faults(
            Fault(op="error", task="serve:compact", chunk=0)
        ):
            with BackgroundServer(instance) as background:
                with ResolverClient(background.address, timeout=10) as client:
                    with pytest.raises(ServerError) as excinfo:
                        client.compact()
                    assert excinfo.value.code == ERR_INTERNAL
                    assert "injected" in excinfo.value.message
                    # The daemon survives the injected failure.
                    assert client.compact()["compactions"] == 1


class _ScriptedServer:
    """A hand-rolled one-connection server answering from a script."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.requests: "list[dict]" = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._thread.join(timeout=10)
        self._sock.close()

    def _serve(self) -> None:
        connection, _ = self._sock.accept()
        with connection, connection.makefile("rb") as reader:
            for response in self.responses:
                line = reader.readline()
                if not line:
                    return
                request = decode_frame(line)
                self.requests.append(request)
                if callable(response):
                    response = response(request)
                connection.sendall(encode_frame(response))


class TestRetrySemantics:
    def test_overloaded_is_retried_automatically(self):
        scripted = _ScriptedServer(
            [
                lambda request: error_response(
                    request["id"], ERR_OVERLOADED, "queue full"
                ),
                lambda request: ok_response(request["id"], {"pong": True}),
            ]
        )
        with scripted:
            with ResolverClient(
                scripted.address, timeout=5, retry_backoff=0.01
            ) as client:
                assert client.ping() == {"pong": True}
        assert [request["verb"] for request in scripted.requests] == [
            "ping",
            "ping",
        ]

    def test_non_retryable_errors_raise_immediately(self):
        scripted = _ScriptedServer(
            [
                lambda request: error_response(
                    request["id"], "invalid-request", "bad"
                )
            ]
        )
        with scripted:
            with ResolverClient(scripted.address, timeout=5) as client:
                with pytest.raises(ServerError, match="bad"):
                    client.query(1)
        assert len(scripted.requests) == 1

    def test_mismatched_response_id_is_rejected(self):
        scripted = _ScriptedServer([ok_response(999, {"pong": True})])
        with scripted:
            with ResolverClient(scripted.address, timeout=5) as client:
                with pytest.raises(ClientError, match="does not match"):
                    client.ping()

    def test_server_closing_mid_request_raises_connect_failed(self):
        scripted = _ScriptedServer([])  # accept, read nothing, close
        with scripted:
            with ResolverClient(scripted.address, timeout=5) as client:
                with pytest.raises(ConnectFailed):
                    client.ping()

    def test_oversized_request_rejected_client_side(self, tmp_path):
        instance = ResolverServer(_resolver(), path=tmp_path / "er.sock")
        with BackgroundServer(instance) as background:
            with ResolverClient(
                background.address, timeout=10, max_frame_bytes=512
            ) as client:
                with pytest.raises(ClientError, match="byte limit"):
                    client.upsert(_profile("a", "word " * 400))
                # Nothing was sent: the daemon is still healthy.
                assert client.ping()["pong"] is True
