"""Unit tests for the non-token blocking methods."""

import pytest

from repro.blocking import (
    AttributeClusteringBlocking,
    CanopyClustering,
    QGramsBlocking,
    SortedNeighborhoodBlocking,
    StandardBlocking,
    SuffixArraysBlocking,
)
from repro.blocking.standard import first_value_prefix
from repro.datamodel.dataset import CleanCleanERDataset, DirtyERDataset
from repro.datamodel.groundtruth import DuplicateSet
from repro.datamodel.profiles import EntityCollection, EntityProfile
from repro.evaluation import evaluate


def _dirty_from_values(values, ground_truth=((0, 1),)):
    collection = EntityCollection(
        [
            EntityProfile.from_dict(f"p{i}", {"text": value})
            for i, value in enumerate(values)
        ]
    )
    return DirtyERDataset(collection, DuplicateSet(ground_truth))


class TestQGramsBlocking:
    def test_robust_to_typos(self):
        # "research" vs "reseerch" share no token but share q-grams.
        dataset = _dirty_from_values(["research", "reseerch"])
        assert len(QGramsBlocking(q=3).build(dataset)) > 0

    def test_short_values(self):
        dataset = _dirty_from_values(["ab", "ab"])
        blocks = QGramsBlocking(q=3).build(dataset)
        assert {block.key for block in blocks} == {"ab"}

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramsBlocking(q=0)

    def test_redundancy_positive(self):
        assert QGramsBlocking.redundancy_positive is True


class TestSuffixArraysBlocking:
    def test_shared_suffix_blocks(self):
        dataset = _dirty_from_values(["johnson", "jonson"])
        blocks = SuffixArraysBlocking(min_suffix_length=4).build(dataset)
        keys = {block.key for block in blocks}
        assert "nson" in keys

    def test_oversized_suffix_blocks_dropped(self):
        values = [f"word{i} common" for i in range(10)]
        dataset = _dirty_from_values(values)
        blocks = SuffixArraysBlocking(
            min_suffix_length=4, max_block_size=5
        ).build(dataset)
        assert all(block.size <= 5 for block in blocks)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SuffixArraysBlocking(min_suffix_length=0)
        with pytest.raises(ValueError):
            SuffixArraysBlocking(max_block_size=1)


class TestAttributeClusteringBlocking:
    def _clean_clean(self):
        left = EntityCollection(
            [
                EntityProfile.from_dict(
                    "a0", {"title": "deep learning", "year": "2016"}
                ),
                EntityProfile.from_dict(
                    "a1", {"title": "graph mining", "year": "2014"}
                ),
            ],
            name="left",
        )
        right = EntityCollection(
            [
                EntityProfile.from_dict(
                    "b0", {"name": "deep learning", "date": "2016"}
                ),
                EntityProfile.from_dict(
                    "b1", {"name": "entity matching", "date": "2012"}
                ),
            ],
            name="right",
        )
        return CleanCleanERDataset(left, right, DuplicateSet([(0, 2)]))

    def test_clusters_similar_attributes_across_sources(self):
        method = AttributeClusteringBlocking()
        blocks = method.build(self._clean_clean())
        clusters = method._clusters
        # title <-> name share values; year <-> date share values.
        assert clusters["title"] == clusters["name"]
        assert clusters["year"] == clusters["date"]
        assert clusters["title"] != clusters["year"]
        assert len(blocks) > 0

    def test_duplicates_still_cooccur(self):
        dataset = self._clean_clean()
        blocks = AttributeClusteringBlocking().build(dataset)
        assert evaluate(blocks, dataset.ground_truth).pc == 1.0

    def test_keys_qualified_by_cluster(self):
        # Same token under unrelated attributes must not co-occur.
        left = EntityCollection(
            [EntityProfile.from_dict("a0", {"color": "orange smoothie"})],
            name="left",
        )
        right = EntityCollection(
            [EntityProfile.from_dict("b0", {"fruit": "orange juice"})],
            name="right",
        )
        dataset = CleanCleanERDataset(left, right, DuplicateSet([(0, 1)]))
        blocks = AttributeClusteringBlocking().build(dataset)
        # color and fruit do share the token "orange", so they are linked
        # as most-similar attributes; the block exists within the cluster.
        assert all("#" in block.key for block in blocks)


class TestStandardBlocking:
    def test_disjoint_blocks(self):
        collection = EntityCollection(
            [
                EntityProfile.from_dict("a", {"surname": "Smith"}),
                EntityProfile.from_dict("b", {"surname": "Smithers"}),
                EntityProfile.from_dict("c", {"surname": "Jones"}),
            ]
        )
        dataset = DirtyERDataset(collection, DuplicateSet([(0, 1)]))
        blocks = StandardBlocking(first_value_prefix("surname", 3)).build(dataset)
        keys = {block.key for block in blocks}
        assert keys == {"smi"}  # "jon" block has a single member -> dropped
        # Each entity contributes at most one key: blocks are disjoint.
        assignments = blocks.block_assignments()
        assert all(count == 1 for count in assignments.values())

    def test_missing_attribute_produces_no_key(self):
        collection = EntityCollection(
            [
                EntityProfile.from_dict("a", {"other": "x"}),
                EntityProfile.from_dict("b", {"surname": "Smith"}),
                EntityProfile.from_dict("c", {"surname": "Smith"}),
            ]
        )
        dataset = DirtyERDataset(collection, DuplicateSet([(1, 2)]))
        blocks = StandardBlocking(first_value_prefix("surname")).build(dataset)
        assert blocks.entity_ids() == {1, 2}

    def test_not_redundancy_positive(self):
        assert StandardBlocking.redundancy_positive is False


class TestSortedNeighborhood:
    def test_window_blocks(self):
        dataset = _dirty_from_values(["aaa", "aab", "zzz", "aaa aab"])
        blocks = SortedNeighborhoodBlocking(window=2).build(dataset)
        assert len(blocks) > 0
        assert all(block.size <= 2 for block in blocks)

    def test_window_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocking(window=1)

    def test_not_redundancy_positive(self):
        assert SortedNeighborhoodBlocking.redundancy_positive is False

    def test_clean_clean_windows_split_by_source(self):
        left = EntityCollection(
            [EntityProfile.from_dict("a0", {"v": "alpha"})], name="l"
        )
        right = EntityCollection(
            [EntityProfile.from_dict("b0", {"v": "alpha"})], name="r"
        )
        dataset = CleanCleanERDataset(left, right, DuplicateSet([(0, 1)]))
        blocks = SortedNeighborhoodBlocking(window=2).build(dataset)
        assert all(block.is_bilateral for block in blocks)
        assert evaluate(blocks, dataset.ground_truth).pc == 1.0


class TestCanopyClustering:
    def test_similar_profiles_share_canopy(self):
        dataset = _dirty_from_values(
            ["alpha beta gamma", "alpha beta gamma delta", "zzz yyy xxx"]
        )
        blocks = CanopyClustering(
            loose_threshold=0.4, tight_threshold=0.8, seed=1
        ).build(dataset)
        assert any({0, 1} <= set(block.entities1) for block in blocks)

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            CanopyClustering(loose_threshold=0.9, tight_threshold=0.2)
        with pytest.raises(ValueError):
            CanopyClustering(loose_threshold=0.0)

    def test_deterministic_given_seed(self):
        dataset = _dirty_from_values(["a b", "a c", "b c", "a b c"])
        build = lambda: [  # noqa: E731
            (b.key, b.entities1)
            for b in CanopyClustering(seed=5).build(dataset)
        ]
        assert build() == build()

    def test_not_redundancy_positive(self):
        assert CanopyClustering.redundancy_positive is False
