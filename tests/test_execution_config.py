"""The unified ExecutionConfig surface and its deprecated kwarg aliases."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.blocking import TokenBlocking
from repro.core.execution import (
    DEPRECATED_EXECUTION_KWARGS,
    ExecutionConfig,
    resolve_execution,
)
from repro.core.pipeline import MetaBlockingWorkflow, meta_block
from repro.core.pruning import WeightedEdgePruning
from repro.datamodel.sinks import InMemorySink, SpillSink


def deprecation_messages(records):
    return [
        str(r.message)
        for r in records
        if issubclass(r.category, DeprecationWarning)
    ]


class TestExecutionConfig:
    def test_defaults_run_serial_in_memory(self):
        config = ExecutionConfig()
        assert config.parallel is None
        assert not config.spills
        assert isinstance(config.make_sink(), InMemorySink)

    def test_spill_dir_and_memory_budget_make_spill_sinks(self, tmp_path):
        for config in (
            ExecutionConfig(spill_dir=tmp_path),
            ExecutionConfig(memory_budget=1 << 20),
            ExecutionConfig(spill_dir=tmp_path, memory_budget=1 << 20),
        ):
            assert config.spills
            sink = config.make_sink()
            assert isinstance(sink, SpillSink)
            sink.abort()

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            ExecutionConfig(parallel_backend="greenlets")
        with pytest.raises(ValueError, match="chunks must be positive"):
            ExecutionConfig(chunks=0)
        with pytest.raises(ValueError, match="chunk_size must be positive"):
            ExecutionConfig(chunk_size=-5)
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutionConfig(chunk_size="huge")
        with pytest.raises(ValueError, match="memory_budget must be positive"):
            ExecutionConfig(memory_budget=0)

    def test_chunk_size_auto_is_the_default(self):
        assert ExecutionConfig().chunk_size == "auto"
        assert ExecutionConfig(chunk_size="auto").chunk_size == "auto"
        assert ExecutionConfig(chunk_size=None).chunk_size is None

    def test_fault_tolerance_field_validation(self):
        with pytest.raises(ValueError, match="max_retries must be >= 0"):
            ExecutionConfig(max_retries=-1)
        with pytest.raises(ValueError, match="max_retries must be an integer"):
            ExecutionConfig(max_retries=1.5)
        with pytest.raises(ValueError, match="max_retries must be an integer"):
            ExecutionConfig(max_retries=True)
        with pytest.raises(ValueError, match="chunk_timeout must be > 0"):
            ExecutionConfig(chunk_timeout=0)
        with pytest.raises(ValueError, match="chunk_timeout must be > 0"):
            ExecutionConfig(chunk_timeout=-2.5)
        with pytest.raises(ValueError, match="chunk_timeout must be a number"):
            ExecutionConfig(chunk_timeout="fast")
        with pytest.raises(ValueError, match="backoff must be >= 0"):
            ExecutionConfig(backoff=-0.1)
        # Zero retries and zero backoff are legal (fail fast, no sleep).
        config = ExecutionConfig(max_retries=0, backoff=0.0, chunk_timeout=0.5)
        assert config.max_retries == 0
        assert config.backoff == 0.0

    def test_resume_from_implies_spilling(self, tmp_path):
        config = ExecutionConfig(resume_from=tmp_path / "run-1-aa")
        assert config.spills

    def test_dict_round_trip(self, tmp_path):
        config = ExecutionConfig(
            parallel=2,
            parallel_backend="in-process",
            chunks=3,
            chunk_size=4096,
            spill_dir=tmp_path,
            memory_budget=1 << 16,
            max_retries=3,
            chunk_timeout=12.5,
            backoff=0.25,
            resume_from=tmp_path / "run-1-aa",
        )
        payload = config.to_dict()
        json.dumps(payload)  # must be JSON-serialisable (paths -> str)
        rebuilt = ExecutionConfig.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert rebuilt.spill_dir == str(tmp_path)

    def test_from_dict_ignores_foreign_keys(self):
        config = ExecutionConfig.from_dict(
            {"parallel": 2, "scheme": "JS", "algorithm": "WEP"}
        )
        assert config == ExecutionConfig(parallel=2)


class TestResolveExecution:
    def test_no_legacy_kwargs_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = resolve_execution(ExecutionConfig(parallel=2))
        assert config.parallel == 2

    def test_legacy_kwargs_warn_once_naming_all_offenders(self):
        with pytest.warns(DeprecationWarning) as records:
            config = resolve_execution(None, parallel=2, chunk_size=1024)
        messages = deprecation_messages(records)
        assert len(messages) == 1
        assert "chunk_size, parallel" in messages[0]
        assert "ExecutionConfig" in messages[0]
        assert config == ExecutionConfig(parallel=2, chunk_size=1024)

    def test_legacy_kwargs_fill_unset_config_fields(self):
        with pytest.warns(DeprecationWarning):
            config = resolve_execution(
                ExecutionConfig(parallel=4), chunk_size=512
            )
        assert config == ExecutionConfig(parallel=4, chunk_size=512)

    def test_legacy_chunk_size_overrides_auto_default(self):
        # chunk_size's "auto" default counts as unset, not a conflict.
        with pytest.warns(DeprecationWarning):
            config = resolve_execution(ExecutionConfig(), chunk_size=512)
        assert config.chunk_size == 512

    def test_legacy_chunk_size_conflicts_with_explicit_int(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="chunk_size given both"):
                resolve_execution(
                    ExecutionConfig(chunk_size=1024), chunk_size=512
                )

    def test_conflicting_values_raise(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="parallel given both"):
                resolve_execution(ExecutionConfig(parallel=4), parallel=2)

    def test_equal_values_are_not_a_conflict(self):
        with pytest.warns(DeprecationWarning):
            config = resolve_execution(ExecutionConfig(parallel=4), parallel=4)
        assert config.parallel == 4

    def test_all_documented_kwargs_are_accepted(self):
        kwargs = {key: 2 for key in DEPRECATED_EXECUTION_KWARGS}
        kwargs["parallel_backend"] = "in-process"
        with pytest.warns(DeprecationWarning):
            config = resolve_execution(None, **kwargs)
        assert config.parallel == 2
        assert config.parallel_backend == "in-process"


class TestPipelineIntegration:
    def test_meta_block_legacy_kwargs_warn_but_work(self, example_blocks):
        with pytest.warns(DeprecationWarning, match="parallel"):
            legacy = meta_block(example_blocks, parallel=1)
        modern = meta_block(
            example_blocks, execution=ExecutionConfig(parallel=1)
        )
        assert list(legacy.comparisons) == list(modern.comparisons)
        assert modern.execution == ExecutionConfig(parallel=1)

    def test_meta_block_does_not_mutate_caller_algorithm(self, example_blocks):
        # Regression: the chunk_size override used to be written straight
        # onto the caller's instance and leaked across calls.
        algorithm = WeightedEdgePruning()
        before = algorithm.chunk_size
        result = meta_block(
            example_blocks,
            algorithm=algorithm,
            execution=ExecutionConfig(chunk_size=7),
        )
        assert algorithm.chunk_size == before
        assert result.algorithm.chunk_size == 7
        assert result.algorithm is not algorithm

    def test_meta_block_without_override_passes_instance_through(
        self, example_blocks
    ):
        algorithm = WeightedEdgePruning()
        result = meta_block(example_blocks, algorithm=algorithm)
        assert result.algorithm is algorithm

    def test_workflow_accepts_execution_config(self, small_clean_clean):
        workflow = MetaBlockingWorkflow(
            TokenBlocking(),
            execution=ExecutionConfig(parallel=2, chunk_size=1024),
        )
        assert workflow.parallel == 2
        assert workflow.chunk_size == 1024
        assert workflow.parallel_backend is None
        result = workflow.run(small_clean_clean)
        assert result.comparisons.cardinality > 0

    def test_workflow_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="parallel"):
            workflow = MetaBlockingWorkflow(TokenBlocking(), parallel=2)
        assert workflow.execution.parallel == 2

    def test_workflow_config_round_trip_carries_execution(self, tmp_path):
        workflow = MetaBlockingWorkflow(
            TokenBlocking(),
            execution=ExecutionConfig(
                parallel=2, chunk_size=2048, spill_dir=tmp_path
            ),
        )
        config = workflow.to_config()
        json.dumps(config)
        rebuilt = MetaBlockingWorkflow.from_config(config)
        assert rebuilt.execution == ExecutionConfig(
            parallel=2, chunk_size=2048, spill_dir=str(tmp_path)
        )
        assert rebuilt.to_config() == config
