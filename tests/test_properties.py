"""Property-based tests (hypothesis) for the core invariants.

Strategy: generate random unilateral and bilateral block collections, then
assert the algebraic properties the paper's algorithms rely on —
backend equivalence, redundancy-freedom, subset relations, monotonicity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockprocessing.comparison_propagation import ComparisonPropagation
from repro.blockprocessing.entity_index import EntityIndex
from repro.core.block_filtering import BlockFiltering
from repro.core.edge_weighting import OptimizedEdgeWeighting, OriginalEdgeWeighting
from repro.core.graph import blocking_graph_stats
from repro.core.parallel import ParallelNodeCentricExecutor
from repro.core.pruning import (
    CardinalityEdgePruning,
    CardinalityNodePruning,
    ReciprocalCardinalityNodePruning,
    ReciprocalWeightedNodePruning,
    RedefinedCardinalityNodePruning,
    RedefinedWeightedNodePruning,
    WeightedEdgePruning,
    WeightedNodePruning,
)
from repro.core.weights import WEIGHTING_SCHEMES
from repro.datamodel.blocks import Block, BlockCollection
from repro.utils.topk import TopKHeap
from repro.utils.unionfind import UnionFind

NUM_ENTITIES = 14
SPLIT = 7  # bilateral collections: ids 0-6 vs 7-13


@st.composite
def unilateral_collections(draw) -> BlockCollection:
    num_blocks = draw(st.integers(min_value=1, max_value=10))
    blocks = []
    for index in range(num_blocks):
        members = draw(
            st.sets(
                st.integers(min_value=0, max_value=NUM_ENTITIES - 1),
                min_size=2,
                max_size=6,
            )
        )
        blocks.append(Block(f"b{index}", sorted(members)))
    return BlockCollection(blocks, NUM_ENTITIES)


@st.composite
def bilateral_collections(draw) -> BlockCollection:
    num_blocks = draw(st.integers(min_value=1, max_value=8))
    blocks = []
    for index in range(num_blocks):
        side1 = draw(
            st.sets(st.integers(min_value=0, max_value=SPLIT - 1), min_size=1, max_size=4)
        )
        side2 = draw(
            st.sets(
                st.integers(min_value=SPLIT, max_value=NUM_ENTITIES - 1),
                min_size=1,
                max_size=4,
            )
        )
        blocks.append(Block(f"b{index}", sorted(side1), sorted(side2)))
    return BlockCollection(blocks, NUM_ENTITIES)


any_collections = st.one_of(unilateral_collections(), bilateral_collections())
scheme_names = st.sampled_from(sorted(WEIGHTING_SCHEMES))


class TestBackendEquivalence:
    @given(blocks=any_collections, scheme=scheme_names)
    @settings(max_examples=60, deadline=None)
    def test_same_weighted_graph(self, blocks: BlockCollection, scheme: str):
        ordered = blocks.sorted_by_cardinality()
        optimized = {
            (left, right): weight
            for left, right, weight in OptimizedEdgeWeighting(
                ordered, scheme
            ).iter_edges()
        }
        original = {
            (left, right): weight
            for left, right, weight in OriginalEdgeWeighting(
                ordered, scheme
            ).iter_edges()
        }
        assert optimized.keys() == original.keys()
        for edge, weight in optimized.items():
            assert weight == pytest.approx(original[edge], abs=1e-9)

    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_graph_stats_match_distinct_comparisons(self, blocks):
        stats = blocking_graph_stats(blocks)
        assert stats.size == len(blocks.distinct_comparisons())
        assert stats.order == len(blocks.entity_ids())


class TestWeightInvariants:
    @given(blocks=any_collections, scheme=scheme_names)
    @settings(max_examples=60, deadline=None)
    def test_weights_non_negative_and_symmetric_graph(self, blocks, scheme):
        weighting = OptimizedEdgeWeighting(blocks, scheme)
        edges = {}
        for left, right, weight in weighting.iter_edges():
            assert left < right
            assert weight >= 0.0
            assert (left, right) not in edges  # each edge exactly once
            edges[(left, right)] = weight

    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_js_weights_bounded_by_one(self, blocks):
        weighting = OptimizedEdgeWeighting(blocks, "JS")
        for _, _, weight in weighting.iter_edges():
            assert 0.0 < weight <= 1.0


class TestPruningInvariants:
    @given(blocks=any_collections, scheme=scheme_names)
    @settings(max_examples=40, deadline=None)
    def test_reciprocal_subset_of_redefined(self, blocks, scheme):
        weighting = OptimizedEdgeWeighting(blocks, scheme)
        redefined_cnp = RedefinedCardinalityNodePruning().prune(weighting)
        reciprocal_cnp = ReciprocalCardinalityNodePruning().prune(weighting)
        assert (
            reciprocal_cnp.distinct_comparisons()
            <= redefined_cnp.distinct_comparisons()
        )
        redefined_wnp = RedefinedWeightedNodePruning().prune(weighting)
        reciprocal_wnp = ReciprocalWeightedNodePruning().prune(weighting)
        assert (
            reciprocal_wnp.distinct_comparisons()
            <= redefined_wnp.distinct_comparisons()
        )

    @given(blocks=any_collections, scheme=scheme_names)
    @settings(max_examples=40, deadline=None)
    def test_redefined_equals_original_distinct_pairs(self, blocks, scheme):
        weighting = OptimizedEdgeWeighting(blocks, scheme)
        assert (
            RedefinedWeightedNodePruning().prune(weighting).distinct_comparisons()
            == WeightedNodePruning().prune(weighting).distinct_comparisons()
        )
        assert (
            RedefinedCardinalityNodePruning(k=2)
            .prune(weighting)
            .distinct_comparisons()
            == CardinalityNodePruning(k=2).prune(weighting).distinct_comparisons()
        )

    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_redefined_and_edge_centric_emit_no_redundancy(self, blocks):
        weighting = OptimizedEdgeWeighting(blocks, "JS")
        for algorithm in (
            WeightedEdgePruning(),
            CardinalityEdgePruning(),
            RedefinedCardinalityNodePruning(),
            RedefinedWeightedNodePruning(),
            ReciprocalCardinalityNodePruning(),
            ReciprocalWeightedNodePruning(),
        ):
            pruned = algorithm.prune(weighting)
            assert pruned.cardinality == len(pruned.distinct_comparisons())

    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_pruned_edges_are_graph_edges(self, blocks):
        weighting = OptimizedEdgeWeighting(blocks, "CBS")
        graph_edges = blocks.distinct_comparisons()
        for algorithm in (WeightedEdgePruning(), WeightedNodePruning()):
            pruned = algorithm.prune(weighting)
            assert pruned.distinct_comparisons() <= graph_edges

    @given(blocks=any_collections, k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_cep_respects_k(self, blocks, k):
        weighting = OptimizedEdgeWeighting(blocks, "JS")
        pruned = CardinalityEdgePruning(k=k).prune(weighting)
        assert pruned.cardinality <= k

    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_wnp_covers_every_node(self, blocks):
        # Node-centric pruning guarantees every graph node keeps >= 1 edge.
        weighting = OptimizedEdgeWeighting(blocks, "JS")
        pruned = WeightedNodePruning().prune(weighting)
        nodes_with_edges = {
            entity
            for entity in blocks.entity_ids()
            if weighting.neighborhood(entity)
        }
        assert nodes_with_edges <= pruned.entity_ids()


class TestParallelExecutorEquivalence:
    """The node-partitioned executor is an exact drop-in for the serial code.

    The chunked code paths (partitioning, per-chunk phase 1/2, deterministic
    merge) run in-process here (``workers=1`` with several chunks) so
    hypothesis can afford many examples; dedicated multi-process tests live
    in ``tests/test_parallel.py``.
    """

    NODE_CENTRIC = (
        CardinalityNodePruning,
        WeightedNodePruning,
        RedefinedCardinalityNodePruning,
        RedefinedWeightedNodePruning,
        ReciprocalCardinalityNodePruning,
        ReciprocalWeightedNodePruning,
    )

    @given(
        blocks=any_collections,
        scheme=scheme_names,
        chunks=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_executor_matches_serial(self, blocks, scheme, chunks):
        ordered = blocks.sorted_by_cardinality()
        for algorithm_class in self.NODE_CENTRIC:
            algorithm = algorithm_class()
            serial = algorithm.prune(OptimizedEdgeWeighting(ordered, scheme))
            executor = ParallelNodeCentricExecutor(
                OptimizedEdgeWeighting(ordered, scheme),
                workers=1,
                chunks=chunks,
            )
            assert executor.prune(algorithm).pairs == serial.pairs

    @given(blocks=any_collections, scheme=scheme_names)
    @settings(max_examples=10, deadline=None)
    def test_multiprocess_executor_matches_serial(self, blocks, scheme):
        ordered = blocks.sorted_by_cardinality()
        for algorithm_class in (
            RedefinedWeightedNodePruning,
            ReciprocalCardinalityNodePruning,
        ):
            algorithm = algorithm_class()
            serial = algorithm.prune(OptimizedEdgeWeighting(ordered, scheme))
            executor = ParallelNodeCentricExecutor(
                OptimizedEdgeWeighting(ordered, scheme), workers=2, chunks=3
            )
            assert executor.prune(algorithm).pairs == serial.pairs


class TestEntityIndexCSRInvariants:
    """The CSR arrays agree with a naive list-of-lists construction."""

    @given(blocks=any_collections)
    @settings(max_examples=60, deadline=None)
    def test_csr_matches_naive_index(self, blocks):
        index = EntityIndex(blocks)
        naive: list[list[int]] = [[] for _ in range(blocks.num_entities)]
        for position, block in enumerate(blocks):
            for entity in block.all_entities:
                naive[entity].append(position)
        for entity_blocks in naive:
            entity_blocks.sort()
        for entity in range(blocks.num_entities):
            assert index.block_list(entity) == naive[entity]
            assert index.block_slice(entity).tolist() == naive[entity]
            assert index.num_blocks_of(entity) == len(naive[entity])
        assert index.block_counts.tolist() == [len(b) for b in naive]
        assert index.indptr[0] == 0
        assert index.indptr[-1] == sum(len(b) for b in naive)

    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_member_csr_matches_blocks(self, blocks):
        index = EntityIndex(blocks)
        for position, block in enumerate(blocks):
            start1 = index.member_indptr1[position]
            stop1 = index.member_indptr1[position + 1]
            assert index.members1[start1:stop1].tolist() == list(block.entities1)
            start2 = index.member_indptr2[position]
            stop2 = index.member_indptr2[position + 1]
            expected2 = (
                block.entities2 if block.entities2 is not None else block.entities1
            )
            assert index.members2[start2:stop2].tolist() == list(expected2)

    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_second_side_mask_matches_membership(self, blocks):
        index = EntityIndex(blocks)
        on_second_side = set()
        for block in blocks:
            if block.entities2 is not None:
                on_second_side.update(block.entities2)
        for entity in range(blocks.num_entities):
            assert index.in_second_collection(entity) == (
                entity in on_second_side
            )
            assert bool(index.second_side_mask[entity]) == (
                entity in on_second_side
            )


class TestBlockFilteringInvariants:
    @given(
        blocks=any_collections,
        ratio=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_increases_comparisons(self, blocks, ratio):
        filtered = BlockFiltering(ratio).process(blocks)
        assert filtered.cardinality <= blocks.cardinality
        assert filtered.aggregate_size <= blocks.aggregate_size

    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_ratio_one_preserves_assignments(self, blocks):
        filtered = BlockFiltering(1.0).process(blocks)
        assert filtered.aggregate_size == blocks.aggregate_size

    @given(blocks=any_collections, ratio=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_comparisons_subset_of_original(self, blocks, ratio):
        filtered = BlockFiltering(ratio).process(blocks)
        assert (
            filtered.distinct_comparisons() <= blocks.distinct_comparisons()
        )


class TestComparisonPropagationInvariants:
    @given(blocks=any_collections)
    @settings(max_examples=40, deadline=None)
    def test_exactly_distinct_comparisons(self, blocks):
        propagated = ComparisonPropagation().process(blocks)
        assert propagated.distinct_comparisons() == blocks.distinct_comparisons()
        assert propagated.cardinality == len(blocks.distinct_comparisons())

    @given(blocks=any_collections)
    @settings(max_examples=30, deadline=None)
    def test_strategies_agree(self, blocks):
        scan = ComparisonPropagation("scan").process(blocks)
        lecobi = ComparisonPropagation("lecobi").process(blocks)
        assert sorted(scan.pairs) == sorted(lecobi.pairs)


class TestDataStructureInvariants:
    @given(
        entries=st.lists(
            st.tuples(st.floats(min_value=0, max_value=1), st.integers(0, 100)),
            max_size=50,
        ),
        k=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_topk_matches_sort(self, entries, k):
        heap = TopKHeap(k)
        for score, item in entries:
            heap.push(score, item)
        expected = set()
        seen = sorted(entries, reverse=True)[:k]
        expected = {item for _, item in seen}
        # With ties the heap picks the larger items, same as the sort.
        assert heap.items() == expected

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_unionfind_partition(self, pairs):
        union = UnionFind(range(21))
        for left, right in pairs:
            union.union(left, right)
        components = list(union.components())
        flattened = sorted(item for component in components for item in component)
        assert flattened == list(range(21))  # a true partition
        for left, right in pairs:
            assert union.connected(left, right)
