"""Unit tests for the extended blocking methods."""

import pytest

from repro.blocking import (
    ExtendedCanopyClustering,
    ExtendedQGramsBlocking,
    MinHashBlocking,
)
from repro.datamodel.dataset import DirtyERDataset
from repro.datamodel.groundtruth import DuplicateSet
from repro.datamodel.profiles import EntityCollection, EntityProfile
from repro.evaluation import evaluate


def _dirty(values, ground_truth=((0, 1),)):
    collection = EntityCollection(
        [
            EntityProfile.from_dict(f"p{i}", {"text": value})
            for i, value in enumerate(values)
        ]
    )
    return DirtyERDataset(collection, DuplicateSet(ground_truth))


class TestExtendedQGrams:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            ExtendedQGramsBlocking(q=0)
        with pytest.raises(ValueError):
            ExtendedQGramsBlocking(threshold=0.0)
        with pytest.raises(ValueError):
            ExtendedQGramsBlocking(max_qgrams=0)

    def test_redundancy_positive(self):
        assert ExtendedQGramsBlocking.redundancy_positive is True

    def test_robust_to_single_typo(self):
        # A one-character edit destroys about q of the token's q-grams, so
        # a sub-0.6 threshold is needed for combination keys to overlap.
        dataset = _dirty(["johnathan", "jonnathan"])
        blocks = ExtendedQGramsBlocking(q=3, threshold=0.5).build(dataset)
        assert evaluate(blocks, dataset.ground_truth).pc == 1.0

    def test_more_discriminative_than_plain_qgrams(self):
        # Keys are concatenated combinations: sharing a single q-gram is
        # no longer enough to co-occur.
        from repro.blocking import QGramsBlocking

        dataset = _dirty(["abcdef", "xxxdef zzz"])
        plain = QGramsBlocking(q=3).build(dataset)
        extended = ExtendedQGramsBlocking(q=3, threshold=0.9).build(dataset)
        assert plain.cardinality >= extended.cardinality

    def test_short_tokens_whole(self):
        dataset = _dirty(["ab", "ab"])
        blocks = ExtendedQGramsBlocking(q=3).build(dataset)
        assert {block.key for block in blocks} == {"ab"}

    def test_max_qgrams_caps_key_explosion(self):
        long_token = "abcdefghijklmnopqrstuvwxyz"
        method = ExtendedQGramsBlocking(q=3, threshold=0.5, max_qgrams=6)
        profile = EntityProfile.from_dict("p", {"t": long_token})
        keys = list(method.keys_for(profile))
        # 6 capped q-grams, combinations of size >= 3: C(6,3..6) = 42.
        assert len(keys) <= 42


class TestMinHash:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            MinHashBlocking(bands=0)
        with pytest.raises(ValueError):
            MinHashBlocking(rows=0)

    def test_redundancy_positive(self):
        assert MinHashBlocking.redundancy_positive is True

    def test_similarity_threshold_formula(self):
        method = MinHashBlocking(bands=16, rows=4)
        assert method.similarity_threshold == pytest.approx((1 / 16) ** 0.25)

    def test_identical_profiles_share_all_bands(self):
        method = MinHashBlocking(bands=6, rows=3)
        profile = EntityProfile.from_dict("p", {"t": "alpha beta gamma"})
        assert set(method.keys_for(profile)) == set(method.keys_for(profile))
        dataset = _dirty(["alpha beta gamma", "alpha beta gamma"])
        blocks = method.build(dataset)
        assert len(blocks) == 6  # every band collides

    def test_similar_profiles_usually_collide(self):
        dataset = _dirty(
            ["alpha beta gamma delta epsilon zeta",
             "alpha beta gamma delta epsilon eta",
             "completely different tokens here now"],
        )
        blocks = MinHashBlocking(bands=8, rows=2, seed=3).build(dataset)
        assert evaluate(blocks, dataset.ground_truth).pc == 1.0

    def test_deterministic_across_instances(self):
        dataset = _dirty(["alpha beta", "alpha beta gamma", "beta delta"])
        first = [(b.key, b.entities1) for b in MinHashBlocking(seed=7).build(dataset)]
        second = [(b.key, b.entities1) for b in MinHashBlocking(seed=7).build(dataset)]
        assert first == second

    def test_empty_profile_produces_no_keys(self):
        method = MinHashBlocking()
        assert list(method.keys_for(EntityProfile.from_dict("p", {}))) == []

    def test_keys_per_profile_equals_bands(self):
        method = MinHashBlocking(bands=5, rows=2)
        profile = EntityProfile.from_dict("p", {"t": "some tokens here"})
        assert len(list(method.keys_for(profile))) == 5


class TestExtendedCanopy:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            ExtendedCanopyClustering(n1=2, n2=3)
        with pytest.raises(ValueError):
            ExtendedCanopyClustering(n1=5, n2=0)

    def test_not_redundancy_positive(self):
        assert ExtendedCanopyClustering.redundancy_positive is False

    def test_canopy_size_capped(self):
        values = [f"shared word{i}" for i in range(20)]
        dataset = _dirty(values)
        blocks = ExtendedCanopyClustering(n1=4, n2=2, seed=1).build(dataset)
        assert all(block.size <= 5 for block in blocks)  # seed + n1

    def test_similar_profiles_cooccur(self):
        dataset = _dirty(
            ["alpha beta gamma", "alpha beta gamma delta", "zzz yyy"],
        )
        blocks = ExtendedCanopyClustering(n1=3, n2=1, seed=2).build(dataset)
        assert any({0, 1} <= set(block.all_entities) for block in blocks)

    def test_deterministic(self):
        dataset = _dirty(["a b", "a c", "b c", "a b c"])
        build = lambda: [  # noqa: E731
            (b.key, b.entities1)
            for b in ExtendedCanopyClustering(n1=2, n2=1, seed=5).build(dataset)
        ]
        assert build() == build()
