"""Unit tests for Block Purging."""

import pytest

from repro.blockprocessing.block_purging import (
    BlockPurging,
    automatic_cardinality_threshold,
)
from repro.datamodel.blocks import Block, BlockCollection


def _collection_with_huge_block(num_entities=10) -> BlockCollection:
    huge = Block("huge", tuple(range(num_entities)))
    small = Block("small", (0, 1))
    return BlockCollection([huge, small], num_entities=num_entities)


class TestSizeBasedPurging:
    def test_purges_blocks_above_half_the_profiles(self):
        purged = BlockPurging(size_fraction=0.5).process(
            _collection_with_huge_block()
        )
        assert [block.key for block in purged] == ["small"]

    def test_threshold_is_inclusive(self):
        blocks = BlockCollection(
            [Block("exact-half", (0, 1, 2, 3, 4))], num_entities=10
        )
        purged = BlockPurging(size_fraction=0.5).process(blocks)
        assert len(purged) == 1

    def test_disabled_size_rule(self):
        purged = BlockPurging(size_fraction=None).process(
            _collection_with_huge_block()
        )
        assert len(purged) == 2

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            BlockPurging(size_fraction=0.0)
        with pytest.raises(ValueError):
            BlockPurging(size_fraction=1.5)

    def test_num_entities_preserved(self):
        purged = BlockPurging().process(_collection_with_huge_block())
        assert purged.num_entities == 10


class TestAutomaticCardinalityThreshold:
    def test_uniform_blocks_keep_everything(self):
        blocks = BlockCollection(
            [Block(f"b{i}", (2 * i, 2 * i + 1)) for i in range(5)],
            num_entities=10,
        )
        threshold = automatic_cardinality_threshold(blocks)
        assert threshold >= 1
        purged = BlockPurging(size_fraction=None, auto_cardinality=True).process(
            blocks
        )
        assert len(purged) == 5

    def test_outlier_block_purged(self):
        # Many small blocks plus one block dominated by comparisons.
        small = [Block(f"b{i}", (i, i + 1, i + 2)) for i in range(30)]
        outlier = Block("outlier", tuple(range(33)))
        blocks = BlockCollection(small + [outlier], num_entities=33)
        threshold = automatic_cardinality_threshold(blocks)
        assert threshold < outlier.cardinality
        purged = BlockPurging(size_fraction=None, auto_cardinality=True).process(
            blocks
        )
        assert "outlier" not in {block.key for block in purged}

    def test_empty_collection(self):
        assert automatic_cardinality_threshold(BlockCollection([], 0)) == 0

    def test_smoothing_factor_validated(self):
        with pytest.raises(ValueError):
            BlockPurging(smoothing_factor=0.5)

    def test_larger_smoothing_purges_no_more(self):
        small = [Block(f"b{i}", (i, i + 1)) for i in range(20)]
        big = Block("big", tuple(range(15)))
        blocks = BlockCollection(small + [big], num_entities=25)
        strict = automatic_cardinality_threshold(blocks, smoothing_factor=1.0)
        lenient = automatic_cardinality_threshold(blocks, smoothing_factor=2.0)
        assert lenient >= strict
