"""Unit tests for the similarity functions and the TF-IDF matcher."""

from collections import Counter

import pytest

from repro.datamodel.dataset import DirtyERDataset
from repro.datamodel.groundtruth import DuplicateSet
from repro.datamodel.profiles import EntityCollection, EntityProfile
from repro.matching.similarity import (
    TfIdfCosineMatcher,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    overlap_coefficient,
    token_cosine,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_symmetry(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")

    def test_single_substitution(self):
        assert levenshtein("cat", "car") == 1

    def test_similarity_normalisation(self):
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert levenshtein_similarity("cat", "car") == pytest.approx(2 / 3)

    def test_triangle_inequality(self):
        a, b, c = "martha", "marhta", "martian"
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_classic_martha_marhta(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)

    def test_classic_dixon_dicksonx(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-4)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("", "") == 1.0

    def test_symmetry(self):
        assert jaro("dwayne", "duane") == pytest.approx(jaro("duane", "dwayne"))


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    def test_classic_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-4)

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler("xmartha", "martha") == pytest.approx(
            jaro("xmartha", "martha")
        )

    def test_prefix_scale_validated(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    def test_bounded_by_one(self):
        assert jaro_winkler("aaaa", "aaaa") == 1.0


class TestTokenCosine:
    def test_identical_vectors(self):
        counts = Counter({"a": 2, "b": 1})
        assert token_cosine(counts, counts) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert token_cosine(Counter({"a": 1}), Counter({"b": 1})) == 0.0

    def test_empty(self):
        assert token_cosine(Counter(), Counter({"a": 1})) == 0.0

    def test_known_value(self):
        left = Counter({"a": 1, "b": 1})
        right = Counter({"a": 1})
        assert token_cosine(left, right) == pytest.approx(1 / 2**0.5)

    def test_symmetry(self):
        left = Counter({"a": 3, "b": 1})
        right = Counter({"a": 1, "c": 2})
        assert token_cosine(left, right) == pytest.approx(
            token_cosine(right, left)
        )


class TestOverlapCoefficient:
    def test_subset_is_one(self):
        assert overlap_coefficient({"a", "b"}, {"a", "b", "c"}) == 1.0

    def test_disjoint(self):
        assert overlap_coefficient({"a"}, {"b"}) == 0.0

    def test_empty(self):
        assert overlap_coefficient(set(), {"a"}) == 0.0


class TestTfIdfCosineMatcher:
    def _dataset(self):
        collection = EntityCollection(
            [
                # "common" appears everywhere -> near-zero IDF.
                EntityProfile.from_dict("a", {"t": "common rareone rretwo"}),
                EntityProfile.from_dict("b", {"t": "common rareone rretwo"}),
                EntityProfile.from_dict("c", {"t": "common otherx othery"}),
                EntityProfile.from_dict("d", {"t": "common thingp thingq"}),
            ]
        )
        return DirtyERDataset(collection, DuplicateSet([(0, 1)]))

    def test_duplicates_score_high(self):
        matcher = TfIdfCosineMatcher(self._dataset())
        assert matcher.similarity(0, 1) > 0.9
        assert matcher.matches(0, 1)

    def test_stop_word_overlap_scores_low(self):
        matcher = TfIdfCosineMatcher(self._dataset())
        # (0, 2) share only the ubiquitous "common" token.
        assert matcher.similarity(0, 2) < 0.2

    def test_beats_plain_jaccard_on_stop_words(self):
        from repro.matching import JaccardMatcher

        dataset = self._dataset()
        tfidf = TfIdfCosineMatcher(dataset)
        jaccard = JaccardMatcher(dataset)
        # Relative separation between true pair and stop-word pair is
        # larger under TF-IDF.
        tfidf_gap = tfidf.similarity(0, 1) - tfidf.similarity(0, 2)
        jaccard_gap = jaccard.similarity(0, 1) - jaccard.similarity(0, 2)
        assert tfidf_gap > jaccard_gap

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            TfIdfCosineMatcher(self._dataset(), threshold=2.0)

    def test_empty_profile(self):
        collection = EntityCollection(
            [
                EntityProfile.from_dict("a", {}),
                EntityProfile.from_dict("b", {"t": "word"}),
            ]
        )
        dataset = DirtyERDataset(collection, DuplicateSet([(0, 1)]))
        matcher = TfIdfCosineMatcher(dataset)
        assert matcher.similarity(0, 1) == 0.0
