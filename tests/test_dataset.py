"""Unit tests for the ER task descriptors."""

import pytest

from repro.datamodel.dataset import CleanCleanERDataset, DirtyERDataset
from repro.datamodel.groundtruth import DuplicateSet
from repro.datamodel.profiles import EntityCollection, EntityProfile


def _collection(prefix: str, count: int) -> EntityCollection:
    return EntityCollection(
        [
            EntityProfile.from_dict(f"{prefix}{i}", {"value": f"{prefix} {i}"})
            for i in range(count)
        ],
        name=prefix,
    )


class TestDirtyERDataset:
    def test_basic_properties(self):
        dataset = DirtyERDataset(_collection("p", 4), DuplicateSet([(0, 1)]))
        assert dataset.num_entities == 4
        assert not dataset.is_clean_clean
        assert dataset.brute_force_comparisons == 6

    def test_profile_lookup(self):
        dataset = DirtyERDataset(_collection("p", 3), DuplicateSet([(0, 1)]))
        assert dataset.profile(2).identifier == "p2"

    def test_iter_profiles(self):
        dataset = DirtyERDataset(_collection("p", 3), DuplicateSet([(0, 1)]))
        ids = [entity_id for entity_id, _ in dataset.iter_profiles()]
        assert ids == [0, 1, 2]

    def test_ground_truth_outside_id_space_rejected(self):
        with pytest.raises(ValueError, match="outside id space"):
            DirtyERDataset(_collection("p", 3), DuplicateSet([(0, 9)]))


class TestCleanCleanERDataset:
    def _dataset(self) -> CleanCleanERDataset:
        return CleanCleanERDataset(
            _collection("a", 3),
            _collection("b", 4),
            DuplicateSet([(0, 3), (1, 4)]),
        )

    def test_unified_id_space(self):
        dataset = self._dataset()
        assert dataset.split == 3
        assert dataset.num_entities == 7
        assert dataset.profile(0).identifier == "a0"
        assert dataset.profile(3).identifier == "b0"

    def test_source_of(self):
        dataset = self._dataset()
        assert dataset.source_of(2) == 0
        assert dataset.source_of(3) == 1

    def test_brute_force(self):
        assert self._dataset().brute_force_comparisons == 12

    def test_iter_profiles_covers_both(self):
        ids = [entity_id for entity_id, _ in self._dataset().iter_profiles()]
        assert ids == list(range(7))

    def test_same_side_ground_truth_rejected(self):
        with pytest.raises(ValueError, match="does not link"):
            CleanCleanERDataset(
                _collection("a", 3),
                _collection("b", 3),
                DuplicateSet([(0, 1)]),
            )

    def test_to_dirty_preserves_ground_truth(self):
        dataset = self._dataset()
        dirty = dataset.to_dirty()
        assert dirty.num_entities == 7
        assert dirty.ground_truth.pairs == dataset.ground_truth.pairs
        assert not dirty.is_clean_clean

    def test_to_dirty_profiles_order(self):
        dirty = self._dataset().to_dirty()
        # Unified ids must keep addressing the same profiles.
        assert dirty.profile(0).identifier.endswith("a0")
        assert dirty.profile(3).identifier.endswith("b0")

    def test_to_dirty_identifiers_unique(self):
        # Identifier collisions across sources must not blow up.
        left = _collection("x", 2)
        right = EntityCollection(
            [EntityProfile.from_dict("x0", {"v": "1"})], name="other"
        )
        dataset = CleanCleanERDataset(left, right, DuplicateSet([(0, 2)]))
        dirty = dataset.to_dirty()
        assert dirty.num_entities == 3
