"""Tests for the columnar edge stream (EdgeBatch and the batched pruning).

The load-bearing guarantee: for every pruning algorithm, weighting backend
and chunk size, the batched ``prune`` path retains *exactly* the same
comparisons as the per-edge ``prune_per_edge`` shim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.edge_stream import (
    DEFAULT_CHUNK_SIZE,
    EdgeBatch,
    TopKEdgeBuffer,
    directed_pair_keys,
    keys_contain,
    neighborhood_mean,
    select_topk_edges,
    select_topk_neighbors,
)
from repro.core.edge_weighting import (
    OptimizedEdgeWeighting,
    OriginalEdgeWeighting,
)
from repro.core.pipeline import meta_block
from repro.core.pruning import PRUNING_ALGORITHMS
from repro.core.vectorized import VectorizedEdgeWeighting
from repro.utils.topk import TopKHeap

BACKENDS = {
    "optimized": OptimizedEdgeWeighting,
    "original": OriginalEdgeWeighting,
    "vectorized": VectorizedEdgeWeighting,
}


class TestEdgeBatch:
    def test_from_edges_round_trip(self):
        edges = [(0, 3, 0.5), (1, 2, 0.25), (2, 4, 1.0)]
        batch = EdgeBatch.from_edges(edges)
        assert len(batch) == 3
        assert list(batch.iter_edges()) == edges
        assert batch.pairs() == [(0, 3), (1, 2), (2, 4)]

    def test_empty(self):
        batch = EdgeBatch.empty()
        assert len(batch) == 0
        assert list(batch.iter_edges()) == []
        assert EdgeBatch.from_edges([]).pairs() == []

    def test_concatenate(self):
        first = EdgeBatch.from_edges([(0, 1, 0.5)])
        second = EdgeBatch.from_edges([(2, 3, 0.25), (1, 4, 0.75)])
        merged = EdgeBatch.concatenate([first, second])
        assert list(merged.iter_edges()) == [
            (0, 1, 0.5),
            (2, 3, 0.25),
            (1, 4, 0.75),
        ]
        assert len(EdgeBatch.concatenate([])) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            EdgeBatch(
                np.array([0, 1]), np.array([2]), np.array([0.5, 0.25])
            )


class TestTopKSelection:
    """The argpartition helpers replicate TopKHeap's deterministic ties."""

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 17, 200])
    def test_select_topk_neighbors_matches_heap(self, k):
        rng = np.random.default_rng(k)
        # Coarse weights force plenty of ties at the boundary.
        weights = rng.integers(0, 5, size=60).astype(np.float64) / 4.0
        neighbors = rng.permutation(60).astype(np.int64)
        heap: TopKHeap[int] = TopKHeap(k)
        for other, weight in zip(neighbors.tolist(), weights.tolist()):
            heap.push(weight, other)
        selected = select_topk_neighbors(weights, neighbors, k)
        assert set(neighbors[selected].tolist()) == heap.items()

    @pytest.mark.parametrize("k", [1, 3, 10, 64])
    def test_select_topk_edges_matches_heap(self, k):
        rng = np.random.default_rng(100 + k)
        count = 80
        weights = rng.integers(0, 4, size=count).astype(np.float64)
        sources = rng.integers(0, 20, size=count).astype(np.int64)
        targets = sources + 1 + rng.integers(0, 20, size=count).astype(np.int64)
        heap: TopKHeap[tuple[int, int]] = TopKHeap(k)
        for s, t, w in zip(
            sources.tolist(), targets.tolist(), weights.tolist()
        ):
            heap.push(w, (s, t))
        selected = select_topk_edges(weights, sources, targets, k)
        got = set(zip(sources[selected].tolist(), targets[selected].tolist()))
        assert got == heap.items()

    def test_zero_k(self):
        weights = np.array([1.0, 2.0])
        neighbors = np.array([3, 4], dtype=np.int64)
        assert select_topk_neighbors(weights, neighbors, 0).size == 0

    @pytest.mark.parametrize("chunk", [1, 3, 50])
    def test_buffer_matches_one_shot(self, chunk):
        rng = np.random.default_rng(7)
        count = 120
        weights = rng.integers(0, 6, size=count).astype(np.float64)
        sources = np.arange(count, dtype=np.int64)
        targets = sources + 1 + rng.integers(0, 9, size=count).astype(np.int64)
        k = 25
        buffer = TopKEdgeBuffer(k)
        for start in range(0, count, chunk):
            stop = start + chunk
            buffer.push(
                EdgeBatch(
                    sources[start:stop], targets[start:stop], weights[start:stop]
                )
            )
        selected = select_topk_edges(weights, sources, targets, k)
        expected = sorted(
            zip(sources[selected].tolist(), targets[selected].tolist())
        )
        assert buffer.pairs() == expected

    def test_buffer_zero_k(self):
        buffer = TopKEdgeBuffer(0)
        buffer.push(EdgeBatch.from_edges([(0, 1, 1.0)]))
        assert buffer.pairs() == []


class TestHelpers:
    def test_neighborhood_mean(self):
        assert neighborhood_mean(np.empty(0)) == 0.0
        assert neighborhood_mean(np.array([1.0, 2.0, 3.0])) == 2.0

    def test_directed_pair_membership(self):
        num_entities = 10
        keys = np.sort(
            directed_pair_keys(
                np.array([2, 2, 5], dtype=np.int64),
                np.array([3, 7, 2], dtype=np.int64),
                num_entities,
            )
        )
        probes_left = np.array([2, 2, 5, 3], dtype=np.int64)
        probes_right = np.array([3, 5, 2, 2], dtype=np.int64)
        got = keys_contain(
            keys, directed_pair_keys(probes_left, probes_right, num_entities)
        )
        assert got.tolist() == [True, False, True, False]

    def test_keys_contain_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert keys_contain(empty, np.array([1], dtype=np.int64)).tolist() == [
            False
        ]
        assert keys_contain(np.array([1], dtype=np.int64), empty).size == 0


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestBatchStream:
    """iter_edge_batches is the same edge stream as iter_edges, chunked."""

    def test_concatenation_equals_iter_edges(self, example_blocks, backend):
        weighting = BACKENDS[backend](example_blocks, "JS")
        per_edge = list(
            BACKENDS[backend](example_blocks, "JS").iter_edges()
        )
        batched = [
            edge
            for batch in weighting.iter_edge_batches()
            for edge in batch.iter_edges()
        ]
        assert batched == per_edge

    @pytest.mark.parametrize("chunk_size", [1, 3, DEFAULT_CHUNK_SIZE])
    def test_chunk_size_only_changes_boundaries(
        self, example_blocks, backend, chunk_size
    ):
        weighting = BACKENDS[backend](example_blocks, "JS")
        reference = list(BACKENDS[backend](example_blocks, "JS").iter_edges())
        batches = list(weighting.iter_edge_batches(chunk_size))
        assert [e for b in batches for e in b.iter_edges()] == reference
        # Every batch except the last respects the requested chunk size at
        # the generic adapter granularity (the vectorized backend packs whole
        # nodes, so batches may exceed chunk_size by one node's edges).
        assert sum(len(b) for b in batches) == len(reference)

    def test_canonical_ids(self, tiny_dirty_blocks, backend):
        weighting = BACKENDS[backend](
            tiny_dirty_blocks.sorted_by_cardinality(), "CBS"
        )
        for batch in weighting.iter_edge_batches(64):
            assert (batch.sources < batch.targets).all()

    def test_neighborhood_arrays_match_neighborhood(
        self, example_blocks, backend
    ):
        weighting = BACKENDS[backend](example_blocks, "JS")
        for entity in weighting.nodes():
            neighborhood = weighting.neighborhood(entity)
            neighbors, weights = weighting.neighborhood_arrays(entity)
            assert neighbors.tolist() == [n for n, _ in neighborhood]
            assert weights.tolist() == [w for _, w in neighborhood]

    def test_emitted_arrays_cover_each_edge_once(self, example_blocks, backend):
        weighting = BACKENDS[backend](example_blocks, "JS")
        emitted = []
        for entity in weighting.nodes():
            neighbors, _ = weighting.emitted_arrays(entity)
            emitted.extend(
                (min(entity, other), max(entity, other))
                for other in neighbors.tolist()
            )
        expected = sorted((s, t) for s, t, _ in weighting.iter_edges())
        assert sorted(emitted) == expected


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name", sorted(PRUNING_ALGORITHMS))
class TestBatchedMatchesPerEdge:
    """Batched prune() == per-edge prune_per_edge(), exactly."""

    def test_paper_example(self, example_blocks, backend, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        batched = algorithm.prune(BACKENDS[backend](example_blocks, "JS"))
        shim = algorithm.prune_per_edge(BACKENDS[backend](example_blocks, "JS"))
        assert batched.pairs == shim.pairs

    def test_dirty_synthetic_ejs(self, tiny_dirty_blocks, backend, name):
        blocks = tiny_dirty_blocks.sorted_by_cardinality()
        algorithm = PRUNING_ALGORITHMS[name]()
        batched = algorithm.prune(BACKENDS[backend](blocks, "EJS"))
        shim = algorithm.prune_per_edge(BACKENDS[backend](blocks, "EJS"))
        assert batched.pairs == shim.pairs

    def test_tiny_chunks(self, example_blocks, backend, name):
        algorithm = PRUNING_ALGORITHMS[name]()
        algorithm.chunk_size = 2  # force many chunk boundaries
        batched = algorithm.prune(BACKENDS[backend](example_blocks, "JS"))
        shim = algorithm.prune_per_edge(BACKENDS[backend](example_blocks, "JS"))
        assert batched.pairs == shim.pairs


class TestPipelineChunkSize:
    def test_chunk_size_invariance(self, small_dirty_blocks):
        for algorithm in ("CEP", "WEP", "RcWNP"):
            default = meta_block(
                small_dirty_blocks, scheme="JS", algorithm=algorithm
            )
            tiny = meta_block(
                small_dirty_blocks,
                scheme="JS",
                algorithm=algorithm,
                chunk_size=5,
            )
            assert tiny.comparisons.pairs == default.comparisons.pairs

    def test_chunk_size_validated(self, small_dirty_blocks):
        with pytest.raises(ValueError, match="chunk_size"):
            meta_block(small_dirty_blocks, chunk_size=0)
