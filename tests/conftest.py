"""Shared fixtures: the paper's worked example and small synthetic datasets.

Setting the ``REPRO_FORCE_SPAWN`` environment variable runs the whole suite
with the ``spawn`` start method forced (and
:func:`repro.core.parallel.fork_available` returning False), so the
shared-memory backend is exercised even on Linux — CI has a dedicated leg
for this.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import BlockPurging, TokenBlocking
from repro.utils.shm import list_segments

if os.environ.get("REPRO_FORCE_SPAWN"):
    multiprocessing.set_start_method("spawn", force=True)
from repro.datasets import (
    bibliographic_dataset,
    paper_example_blocks,
    paper_example_dataset,
    random_dataset,
)
from repro.datasets.synthetic import DatasetScale

# The paper's Figure 2(a) JS weights, keyed by 0-based entity id pairs
# (p1..p6 -> 0..5). Derived in src/repro/datasets/examples.py.
PAPER_JS_WEIGHTS = {
    (0, 2): 2 / 6,
    (0, 3): 1 / 6,
    (1, 2): 1 / 7,
    (1, 3): 2 / 5,
    (2, 3): 1 / 8,
    (2, 4): 2 / 5,
    (2, 5): 1 / 5,
    (3, 4): 1 / 5,
    (3, 5): 1 / 4,
    (4, 5): 1 / 2,
}


@pytest.fixture(scope="session")
def example_dataset():
    """The six profiles of the paper's Figure 1(a)."""
    return paper_example_dataset()


@pytest.fixture(scope="session")
def example_blocks():
    """The eight Token Blocking blocks of Figure 1(b)."""
    return paper_example_blocks()


@pytest.fixture(scope="session")
def small_clean_clean():
    """A small Clean-Clean synthetic dataset for integration tests."""
    return bibliographic_dataset(
        DatasetScale(size1=120, size2=300, num_duplicates=100), seed=11
    )


@pytest.fixture(scope="session")
def small_dirty(small_clean_clean):
    """The Dirty ER union of ``small_clean_clean``."""
    return small_clean_clean.to_dirty()


@pytest.fixture(scope="session")
def small_clean_blocks(small_clean_clean):
    """Purged Token Blocking blocks of the small Clean-Clean dataset."""
    return BlockPurging().process(TokenBlocking().build(small_clean_clean))


@pytest.fixture(scope="session")
def small_dirty_blocks(small_dirty):
    """Purged Token Blocking blocks of the small Dirty dataset."""
    return BlockPurging().process(TokenBlocking().build(small_dirty))


@pytest.fixture
def shm_leak_check():
    """Assert the test leaks no repro shared-memory segments.

    Compares ``/dev/shm`` snapshots before and after the test body (set
    difference, so segments owned by longer-lived module/session fixtures
    don't false-positive). A no-op on platforms without ``/dev/shm``.
    """
    before = list_segments()
    yield
    leaked = list_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture
def spill_leak_check(tmp_path):
    """A spill directory asserted empty of run artifacts after the test.

    Mirrors ``shm_leak_check``: any ``run-*`` directory still present when
    the test body finishes (without the test having finalised a view over
    it) is a leaked spill artifact. The fixture yields the parent directory
    to pass as ``spill_dir``; tests that keep a finalised view alive should
    ``release()`` it before returning.
    """
    spill_dir = tmp_path / "spill"
    yield spill_dir
    leaked = sorted(p.name for p in spill_dir.glob("run-*")) if spill_dir.exists() else []
    assert not leaked, f"leaked spill run directories: {leaked}"


@pytest.fixture(scope="session")
def tiny_dirty():
    """A 60-entity random Dirty dataset (fast unit-test input)."""
    return random_dataset(num_entities=60, num_duplicates=15, seed=3)


@pytest.fixture(scope="session")
def tiny_dirty_blocks(tiny_dirty):
    return TokenBlocking().build(tiny_dirty)
