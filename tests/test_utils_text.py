"""Unit tests for the synthetic-text helpers (Zipf vocabulary, noise ops)."""

import random
from collections import Counter

import pytest

from repro.utils.text import (
    ZipfVocabulary,
    abbreviate,
    perturb_value,
    typo,
)


class TestZipfVocabulary:
    def test_distinct_words(self):
        vocab = ZipfVocabulary(500, random.Random(1))
        assert len(set(vocab.words)) == 500

    def test_word_lengths(self):
        vocab = ZipfVocabulary(
            100, random.Random(2), min_word_length=4, max_word_length=6
        )
        assert all(4 <= len(word) <= 6 for word in vocab.words)

    def test_rank_frequencies_decrease(self):
        rng = random.Random(3)
        vocab = ZipfVocabulary(50, rng, exponent=1.2)
        counts = Counter(vocab.sample(rng) for _ in range(30_000))
        rank0 = counts[vocab.words[0]]
        rank10 = counts[vocab.words[10]]
        rank40 = counts[vocab.words[40]]
        assert rank0 > rank10 > rank40 > 0

    def test_deterministic_given_seed(self):
        vocab_a = ZipfVocabulary(100, random.Random(7))
        vocab_b = ZipfVocabulary(100, random.Random(7))
        assert vocab_a.words == vocab_b.words
        rng_a, rng_b = random.Random(9), random.Random(9)
        assert vocab_a.sample_many(20, rng_a) == vocab_b.sample_many(20, rng_b)

    def test_sample_always_in_vocabulary(self):
        rng = random.Random(4)
        vocab = ZipfVocabulary(10, rng)
        words = set(vocab.words)
        assert all(vocab.sample(rng) in words for _ in range(200))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfVocabulary(0, random.Random(0))
        with pytest.raises(ValueError):
            ZipfVocabulary(10, random.Random(0), exponent=0.0)


class TestTypo:
    def test_changes_or_preserves_length_by_one(self):
        rng = random.Random(5)
        for _ in range(100):
            word = "example"
            result = typo(word, rng)
            assert abs(len(result) - len(word)) <= 1

    def test_single_character_word(self):
        rng = random.Random(6)
        for _ in range(50):
            result = typo("a", rng)
            assert len(result) in (1, 2)

    def test_empty_word_unchanged(self):
        assert typo("", random.Random(0)) == ""

    def test_usually_differs(self):
        rng = random.Random(8)
        differing = sum(typo("research", rng) != "research" for _ in range(100))
        # A substitution may pick the same letter; most edits differ.
        assert differing > 80


class TestAbbreviate:
    def test_initial(self):
        assert abbreviate("jack") == "j"

    def test_empty(self):
        assert abbreviate("") == ""


class TestPerturbValue:
    def test_no_noise_is_identity_modulo_whitespace(self):
        rng = random.Random(1)
        value = "alpha  beta\tgamma"
        result = perturb_value(value, rng, typo_probability=0, drop_probability=0)
        assert result == "alpha beta gamma"

    def test_full_drop_gives_empty(self):
        rng = random.Random(2)
        assert perturb_value("a b c", rng, drop_probability=1.0) == ""

    def test_abbreviation(self):
        rng = random.Random(3)
        result = perturb_value(
            "jack miller",
            rng,
            typo_probability=0,
            drop_probability=0,
            abbreviate_probability=1.0,
        )
        assert result == "j m"

    def test_deterministic(self):
        a = perturb_value("one two three four", random.Random(11))
        b = perturb_value("one two three four", random.Random(11))
        assert a == b
