"""Unit tests for the original and optimized edge weighting backends.

The central contract: both backends expose exactly the same weighted
blocking graph, for every weighting scheme and both ER tasks.
"""

import pytest

from repro.core.edge_weighting import OptimizedEdgeWeighting, OriginalEdgeWeighting
from repro.core.weights import WEIGHTING_SCHEMES
from repro.datamodel.blocks import Block, BlockCollection

BACKENDS = [OptimizedEdgeWeighting, OriginalEdgeWeighting]


def _edges_as_dict(weighting):
    return {(left, right): weight for left, right, weight in weighting.iter_edges()}


@pytest.mark.parametrize("scheme", sorted(WEIGHTING_SCHEMES))
class TestBackendsAgree:
    def test_on_paper_example(self, example_blocks, scheme):
        optimized = _edges_as_dict(OptimizedEdgeWeighting(example_blocks, scheme))
        original = _edges_as_dict(OriginalEdgeWeighting(example_blocks, scheme))
        assert set(optimized) == set(original)
        for edge, weight in optimized.items():
            assert weight == pytest.approx(original[edge], abs=1e-12)

    def test_on_dirty_synthetic(self, tiny_dirty_blocks, scheme):
        optimized = _edges_as_dict(OptimizedEdgeWeighting(tiny_dirty_blocks, scheme))
        original = _edges_as_dict(OriginalEdgeWeighting(tiny_dirty_blocks, scheme))
        assert optimized.keys() == original.keys()
        for edge, weight in optimized.items():
            assert weight == pytest.approx(original[edge], abs=1e-9)

    def test_on_clean_clean_synthetic(self, small_clean_blocks, scheme):
        optimized = _edges_as_dict(
            OptimizedEdgeWeighting(small_clean_blocks, scheme)
        )
        original = _edges_as_dict(OriginalEdgeWeighting(small_clean_blocks, scheme))
        assert optimized.keys() == original.keys()
        for edge, weight in optimized.items():
            assert weight == pytest.approx(original[edge], abs=1e-9)

    def test_neighborhoods_match_edges(self, example_blocks, scheme):
        weighting = OptimizedEdgeWeighting(example_blocks, scheme)
        edges = _edges_as_dict(weighting)
        for entity, neighborhood in weighting.iter_neighborhoods():
            for other, weight in neighborhood:
                key = (min(entity, other), max(entity, other))
                assert weight == pytest.approx(edges[key], abs=1e-12)


@pytest.mark.parametrize("backend", BACKENDS)
class TestGraphStructure:
    def test_paper_example_graph(self, example_blocks, backend):
        weighting = backend(example_blocks, "JS")
        assert weighting.graph_order == 6
        assert weighting.graph_size == 10

    def test_each_edge_emitted_once(self, example_blocks, backend):
        edges = [
            (left, right) for left, right, _ in backend(example_blocks, "CBS").iter_edges()
        ]
        assert len(edges) == len(set(edges))

    def test_edges_canonical(self, example_blocks, backend):
        for left, right, _ in backend(example_blocks, "CBS").iter_edges():
            assert left < right

    def test_degrees(self, example_blocks, backend):
        degrees = backend(example_blocks, "JS").degrees()
        # From Figure 2(a): p3 and p4 have 5 neighbours each, p1/p2 two,
        # p5 three, p6 three.
        assert degrees == [2, 2, 5, 5, 3, 3]

    def test_neighborhood_symmetry(self, example_blocks, backend):
        weighting = backend(example_blocks, "JS")
        neighbors = {
            entity: {other for other, _ in neighborhood}
            for entity, neighborhood in weighting.iter_neighborhoods()
        }
        for entity, others in neighbors.items():
            for other in others:
                assert entity in neighbors[other]


class TestOptimizedSpecifics:
    def test_repeated_passes_are_stable(self, example_blocks):
        # Regression test: the flags array must not leak state between
        # passes (WEP iterates edges twice).
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        first = sorted(weighting.iter_edges())
        second = sorted(weighting.iter_edges())
        assert first == second

    def test_neighborhood_then_edges(self, example_blocks):
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        _ = weighting.neighborhood(2)
        assert len(list(weighting.iter_edges())) == 10

    def test_bilateral_edges_cross_split_only(self, small_clean_blocks):
        weighting = OptimizedEdgeWeighting(small_clean_blocks, "CBS")
        index = weighting.index
        for left, right, _ in weighting.iter_edges():
            assert index.in_second_collection(right)
            assert not index.in_second_collection(left)


class TestSchemeBehaviourOnGraph:
    def test_cbs_weights_are_common_block_counts(self, example_blocks):
        weighting = OptimizedEdgeWeighting(example_blocks, "CBS")
        edges = _edges_as_dict(weighting)
        assert edges[(0, 2)] == 2.0  # jack + miller
        assert edges[(4, 5)] == 1.0  # car only

    def test_arcs_prefers_small_blocks(self, example_blocks):
        weighting = OptimizedEdgeWeighting(example_blocks, "ARCS")
        edges = _edges_as_dict(weighting)
        # (p1,p3) share two unit blocks (1/1 + 1/1); (p5,p6) share only the
        # six-comparison "car" block (1/6).
        assert edges[(0, 2)] == pytest.approx(2.0)
        assert edges[(4, 5)] == pytest.approx(1 / 6)
        assert edges[(0, 2)] > edges[(4, 5)]

    def test_ejs_discounts_hub_nodes(self, example_blocks):
        js_edges = _edges_as_dict(OptimizedEdgeWeighting(example_blocks, "JS"))
        ejs_edges = _edges_as_dict(OptimizedEdgeWeighting(example_blocks, "EJS"))
        # p3 and p4 are the hubs (degree 5): their mutual edge loses more
        # weight relative to JS than the (p1,p2)-style low-degree edges.
        ratio_hub = ejs_edges[(2, 3)] / js_edges[(2, 3)]
        ratio_leaf = ejs_edges[(0, 2)] / js_edges[(0, 2)]
        assert ratio_hub < ratio_leaf


class TestEmptyAndDegenerate:
    def test_empty_collection(self):
        weighting = OptimizedEdgeWeighting(BlockCollection([], 0), "JS")
        assert list(weighting.iter_edges()) == []
        assert weighting.graph_order == 0
        assert weighting.graph_size == 0

    def test_single_block(self):
        blocks = BlockCollection([Block("only", (0, 1))], num_entities=2)
        weighting = OptimizedEdgeWeighting(blocks, "JS")
        assert list(weighting.iter_edges()) == [(0, 1, 1.0)]

    def test_unknown_backend_scheme(self):
        with pytest.raises(ValueError):
            OptimizedEdgeWeighting(BlockCollection([], 0), "XXX")
