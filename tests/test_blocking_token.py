"""Unit tests for Token Blocking."""

from repro.blocking import TokenBlocking
from repro.datamodel.dataset import CleanCleanERDataset, DirtyERDataset
from repro.datamodel.groundtruth import DuplicateSet
from repro.datamodel.profiles import EntityCollection, EntityProfile


def _dirty(*values: str) -> DirtyERDataset:
    collection = EntityCollection(
        [
            EntityProfile.from_dict(f"p{i}", {"text": value})
            for i, value in enumerate(values)
        ]
    )
    return DirtyERDataset(collection, DuplicateSet([(0, 1)]))


class TestTokenBlockingDirty:
    def test_one_block_per_shared_token(self):
        blocks = TokenBlocking().build(_dirty("alpha beta", "beta gamma", "gamma"))
        keys = {block.key for block in blocks}
        assert keys == {"beta", "gamma"}

    def test_unshared_tokens_produce_no_block(self):
        blocks = TokenBlocking().build(_dirty("unique1", "unique2"))
        assert len(blocks) == 0

    def test_redundancy_positive_flag(self):
        assert TokenBlocking.redundancy_positive is True

    def test_min_token_length(self):
        blocks = TokenBlocking(min_token_length=3).build(_dirty("ab abc", "ab abc"))
        assert {block.key for block in blocks} == {"abc"}

    def test_stop_words_excluded(self):
        blocks = TokenBlocking(stop_words=["the"]).build(
            _dirty("the alpha", "the alpha")
        )
        assert {block.key for block in blocks} == {"alpha"}

    def test_stop_words_case_insensitive(self):
        blocks = TokenBlocking(stop_words=["The"]).build(
            _dirty("THE alpha", "the alpha")
        )
        assert {block.key for block in blocks} == {"alpha"}

    def test_entity_in_block_once_despite_repeats(self):
        blocks = TokenBlocking().build(_dirty("echo echo echo", "echo"))
        (block,) = blocks
        assert block.entities1 == (0, 1)

    def test_deterministic_order(self):
        dataset = _dirty("b a", "a b")
        first = [b.key for b in TokenBlocking().build(dataset)]
        second = [b.key for b in TokenBlocking().build(dataset)]
        assert first == second == sorted(first)


class TestTokenBlockingCleanClean:
    def _dataset(self) -> CleanCleanERDataset:
        left = EntityCollection(
            [
                EntityProfile.from_dict("a0", {"title": "alpha shared"}),
                EntityProfile.from_dict("a1", {"title": "lonely"}),
            ],
            name="left",
        )
        right = EntityCollection(
            [
                EntityProfile.from_dict("b0", {"name": "shared beta"}),
                EntityProfile.from_dict("b1", {"name": "beta"}),
            ],
            name="right",
        )
        return CleanCleanERDataset(left, right, DuplicateSet([(0, 2)]))

    def test_blocks_are_bilateral(self):
        blocks = TokenBlocking().build(self._dataset())
        assert all(block.is_bilateral for block in blocks)

    def test_single_side_keys_dropped(self):
        blocks = TokenBlocking().build(self._dataset())
        keys = {block.key for block in blocks}
        # "alpha" and "lonely" exist only in the left collection, "beta"
        # only in the right one; only "shared" spans both.
        assert keys == {"shared"}

    def test_unified_ids(self):
        blocks = TokenBlocking().build(self._dataset())
        (block,) = blocks
        assert block.entities1 == (0,)
        assert block.entities2 == (2,)

    def test_schema_agnostic(self):
        # Attribute names differ entirely between the sources; blocking
        # works anyway because only values are tokenised.
        blocks = TokenBlocking().build(self._dataset())
        assert len(blocks) == 1
