"""Unit tests for Block Filtering (Algorithm 1)."""

import pytest

from repro.core.block_filtering import BlockFiltering
from repro.datamodel.blocks import Block, BlockCollection
from repro.evaluation import evaluate


class TestBlockFiltering:
    def test_ratio_validated(self):
        with pytest.raises(ValueError):
            BlockFiltering(0.0)
        with pytest.raises(ValueError):
            BlockFiltering(1.2)

    def test_ratio_one_keeps_every_assignment(self, example_blocks):
        filtered = BlockFiltering(1.0).process(example_blocks)
        assert filtered.cardinality == example_blocks.cardinality
        assert filtered.aggregate_size == example_blocks.aggregate_size

    def test_output_sorted_by_cardinality(self, example_blocks):
        filtered = BlockFiltering(0.8).process(example_blocks)
        cardinalities = [block.cardinality for block in filtered]
        assert cardinalities == sorted(cardinalities)

    def test_every_entity_keeps_at_least_one_block(self, example_blocks):
        filtered = BlockFiltering(0.05).process(example_blocks)
        # The floor of one assignment means entities can only vanish if
        # their last block shrank below two members.
        limits_respected = filtered.block_assignments()
        assert all(count >= 1 for count in limits_respected.values())

    def test_smaller_ratio_never_increases_cardinality(self, small_dirty_blocks):
        cardinalities = [
            BlockFiltering(ratio).process(small_dirty_blocks).cardinality
            for ratio in (0.2, 0.5, 0.8, 1.0)
        ]
        assert cardinalities == sorted(cardinalities)

    def test_monotone_recall(self, small_dirty, small_dirty_blocks):
        # More aggressive filtering can only lose recall.
        recalls = [
            evaluate(
                BlockFiltering(ratio).process(small_dirty_blocks),
                small_dirty.ground_truth,
            ).pc
            for ratio in (0.1, 0.5, 1.0)
        ]
        assert recalls[0] <= recalls[1] <= recalls[2]

    def test_assignment_limit_rounding(self):
        # 3 blocks at r=0.5 -> round(1.5) = 2 retained.
        blocks = BlockCollection(
            [
                Block("a", (0, 1)),
                Block("b", (0, 1)),
                Block("c", (0, 1)),
            ],
            num_entities=2,
        )
        filtered = BlockFiltering(0.5).process(blocks)
        assert len(filtered) == 2

    def test_blocks_shrunk_below_two_members_dropped(self):
        blocks = BlockCollection(
            [
                Block("small", (0, 1)),
                Block("large", (0, 1, 2, 3)),
            ],
            num_entities=4,
        )
        # r=0.5: entities 0 and 1 have 2 blocks -> limit 1 -> they stay only
        # in "small"; "large" keeps {2,3} and survives.
        filtered = BlockFiltering(0.5).process(blocks)
        by_key = {block.key: set(block.entities1) for block in filtered}
        assert by_key == {"small": {0, 1}, "large": {2, 3}}

    def test_bilateral_blocks_filtered_per_side(self, small_clean_blocks):
        filtered = BlockFiltering(0.5).process(small_clean_blocks)
        assert filtered.is_bilateral
        assert filtered.cardinality < small_clean_blocks.cardinality
        assert all(block.is_valid for block in filtered)

    def test_reduces_graph_against_paper_expectation(
        self, small_dirty, small_dirty_blocks
    ):
        # r=0.8 should cut a large share of comparisons at <2% recall cost
        # (paper Table 1: 64-75% cardinality drop, <0.5% PC drop).
        before = evaluate(small_dirty_blocks, small_dirty.ground_truth)
        filtered = BlockFiltering(0.8).process(small_dirty_blocks)
        after = evaluate(filtered, small_dirty.ground_truth)
        assert filtered.cardinality < 0.75 * small_dirty_blocks.cardinality
        assert after.pc >= 0.95 * before.pc

    def test_bpe_reduced_by_roughly_one_minus_r(self, small_dirty_blocks):
        filtered = BlockFiltering(0.8).process(small_dirty_blocks)
        # BPE drops by about (1-r) = 20% (paper Section 6.2); allow slack
        # for rounding and dropped blocks.
        ratio = filtered.bpe / small_dirty_blocks.bpe
        assert 0.6 <= ratio <= 0.95

    def test_empty_collection(self):
        filtered = BlockFiltering(0.5).process(BlockCollection([], 0))
        assert len(filtered) == 0
