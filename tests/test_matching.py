"""Unit tests for matchers, resolution and clustering."""

import pytest

from repro.datamodel.blocks import ComparisonCollection
from repro.datamodel.groundtruth import DuplicateSet
from repro.datamodel.profiles import EntityCollection, EntityProfile
from repro.datamodel.dataset import DirtyERDataset
from repro.matching import (
    JaccardMatcher,
    OracleMatcher,
    ThresholdMatcher,
    connected_components,
    matched_pairs,
    resolve,
)


def _dataset():
    collection = EntityCollection(
        [
            EntityProfile.from_dict("a", {"t": "alpha beta gamma"}),
            EntityProfile.from_dict("b", {"t": "alpha beta gamma"}),
            EntityProfile.from_dict("c", {"t": "alpha delta"}),
            EntityProfile.from_dict("d", {"t": "omega psi"}),
        ]
    )
    return DirtyERDataset(collection, DuplicateSet([(0, 1)]))


class TestOracleMatcher:
    def test_follows_ground_truth(self):
        matcher = OracleMatcher(DuplicateSet([(0, 1)]))
        assert matcher.matches(1, 0)
        assert not matcher.matches(0, 2)

    def test_similarity_binary(self):
        matcher = OracleMatcher(DuplicateSet([(0, 1)]))
        assert matcher.similarity(0, 1) == 1.0
        assert matcher.similarity(0, 2) == 0.0


class TestJaccardMatcher:
    def test_identical_profiles(self):
        matcher = JaccardMatcher(_dataset(), threshold=0.99)
        assert matcher.similarity(0, 1) == pytest.approx(1.0)
        assert matcher.matches(0, 1)

    def test_partial_overlap(self):
        matcher = JaccardMatcher(_dataset())
        assert matcher.similarity(0, 2) == pytest.approx(1 / 4)

    def test_disjoint_profiles(self):
        matcher = JaccardMatcher(_dataset())
        assert matcher.similarity(0, 3) == 0.0

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            JaccardMatcher(_dataset(), threshold=1.5)

    def test_token_cache_consistency(self):
        matcher = JaccardMatcher(_dataset())
        first = matcher.similarity(0, 2)
        second = matcher.similarity(0, 2)
        assert first == second


class TestThresholdMatcher:
    def test_wraps_similarity_function(self):
        matcher = ThresholdMatcher(lambda i, j: abs(i - j) / 10, threshold=0.3)
        assert matcher.matches(0, 5)
        assert not matcher.matches(0, 2)


class TestResolve:
    def test_counts_executed_comparisons(self):
        source = ComparisonCollection([(0, 1), (0, 1), (0, 2)], num_entities=3)
        result = resolve(source, OracleMatcher(DuplicateSet([(0, 1)])))
        # Redundant comparisons are executed again.
        assert result.executed_comparisons == 3
        assert result.matches == {(0, 1)}
        assert result.elapsed_seconds >= 0.0

    def test_match_rate(self):
        source = ComparisonCollection([(0, 1), (0, 2)], num_entities=3)
        result = resolve(source, OracleMatcher(DuplicateSet([(0, 1)])))
        assert result.match_rate == 0.5

    def test_empty_source(self):
        result = resolve(
            ComparisonCollection([], 0), OracleMatcher(DuplicateSet([]))
        )
        assert result.executed_comparisons == 0
        assert result.match_rate == 0.0


class TestClustering:
    def test_connected_components(self):
        clusters = connected_components([(0, 1), (1, 2), (4, 5)], num_entities=6)
        assert clusters == [[0, 1, 2], [4, 5]]

    def test_singletons_omitted(self):
        clusters = connected_components([(0, 1)], num_entities=5)
        assert clusters == [[0, 1]]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            connected_components([(0, 9)], num_entities=3)

    def test_matched_pairs_canonicalises(self):
        pairs = matched_pairs([(4, 0)], split=3)
        assert pairs == {(0, 4)}

    def test_matched_pairs_rejects_same_side(self):
        with pytest.raises(ValueError, match="does not link"):
            matched_pairs([(0, 1)], split=3)


class TestEstimateResolutionSeconds:
    def test_extrapolates_from_sample(self):
        from repro.datamodel.blocks import ComparisonCollection
        from repro.matching.resolution import estimate_resolution_seconds

        source = ComparisonCollection([(0, 1)] * 100, num_entities=2)
        matcher = OracleMatcher(DuplicateSet([(0, 1)]))
        estimate = estimate_resolution_seconds(
            1_000_000, source, matcher, sample_size=50
        )
        small = estimate_resolution_seconds(100, source, matcher, sample_size=50)
        assert estimate > small > 0.0

    def test_empty_source(self):
        from repro.datamodel.blocks import ComparisonCollection
        from repro.matching.resolution import estimate_resolution_seconds

        source = ComparisonCollection([], num_entities=0)
        matcher = OracleMatcher(DuplicateSet([]))
        assert estimate_resolution_seconds(100, source, matcher) == 0.0

    def test_sample_size_validated(self):
        import pytest as _pytest
        from repro.datamodel.blocks import ComparisonCollection
        from repro.matching.resolution import estimate_resolution_seconds

        source = ComparisonCollection([(0, 1)], num_entities=2)
        matcher = OracleMatcher(DuplicateSet([]))
        with _pytest.raises(ValueError):
            estimate_resolution_seconds(10, source, matcher, sample_size=0)
