"""Tests for progressive (pay-as-you-go) meta-blocking."""

import pytest

from repro.datamodel.blocks import Block, BlockCollection
from repro.datamodel.groundtruth import DuplicateSet
from repro.matching import OracleMatcher
from repro.progressive import (
    ProgressiveMetaBlocking,
    ProgressivePoint,
    progressive_recall_curve,
)


class TestScheduler:
    def test_descending_weight_order(self, example_blocks):
        scheduler = ProgressiveMetaBlocking(
            example_blocks, scheme="JS", block_filtering_ratio=None
        )
        weights = [weight for _, _, weight in scheduler.stream()]
        assert weights == sorted(weights, reverse=True)
        assert len(weights) == 10

    def test_best_edge_first_on_example(self, example_blocks):
        scheduler = ProgressiveMetaBlocking(
            example_blocks, scheme="JS", block_filtering_ratio=None
        )
        first = next(scheduler.stream())
        assert first[:2] == (4, 5)  # the 1/2-weight edge p5-p6

    def test_budget(self, example_blocks):
        scheduler = ProgressiveMetaBlocking(
            example_blocks, block_filtering_ratio=None
        )
        assert len(scheduler.comparisons(budget=3)) == 3
        assert len(scheduler.comparisons()) == 10

    def test_deterministic(self, example_blocks):
        build = lambda: ProgressiveMetaBlocking(  # noqa: E731
            example_blocks, block_filtering_ratio=None
        ).comparisons()
        assert build() == build()

    def test_filtering_shrinks_stream(self, small_dirty_blocks):
        full = ProgressiveMetaBlocking(
            small_dirty_blocks, block_filtering_ratio=None
        )
        filtered = ProgressiveMetaBlocking(
            small_dirty_blocks, block_filtering_ratio=0.5
        )
        assert len(filtered) <= len(full)

    def test_empty_blocks(self):
        scheduler = ProgressiveMetaBlocking(
            BlockCollection([], 0), block_filtering_ratio=None
        )
        assert list(scheduler.stream()) == []


class TestRecallCurve:
    def test_monotone_and_complete(self, small_dirty, small_dirty_blocks):
        scheduler = ProgressiveMetaBlocking(small_dirty_blocks)
        curve = progressive_recall_curve(
            scheduler,
            OracleMatcher(small_dirty.ground_truth),
            small_dirty.ground_truth,
            checkpoints=10,
        )
        recalls = [point.recall for point in curve]
        assert recalls == sorted(recalls)
        assert curve[-1].comparisons == len(scheduler)

    def test_front_loading(self, small_dirty, small_dirty_blocks):
        # The pay-as-you-go property: most duplicates within the first
        # fraction of comparisons — recall at 20% effort beats 20% of
        # final recall by a wide margin.
        scheduler = ProgressiveMetaBlocking(small_dirty_blocks)
        curve = progressive_recall_curve(
            scheduler,
            OracleMatcher(small_dirty.ground_truth),
            small_dirty.ground_truth,
            checkpoints=10,
        )
        total = curve[-1]
        early = next(
            point for point in curve if point.comparisons >= 0.2 * total.comparisons
        )
        assert early.recall > 0.6 * total.recall

    def test_checkpoints_validated(self, small_dirty, small_dirty_blocks):
        scheduler = ProgressiveMetaBlocking(small_dirty_blocks)
        with pytest.raises(ValueError):
            progressive_recall_curve(
                scheduler,
                OracleMatcher(small_dirty.ground_truth),
                small_dirty.ground_truth,
                checkpoints=0,
            )

    def test_empty_stream(self):
        scheduler = ProgressiveMetaBlocking(
            BlockCollection([], 0), block_filtering_ratio=None
        )
        curve = progressive_recall_curve(
            scheduler, OracleMatcher(DuplicateSet([(0, 1)])), DuplicateSet([(0, 1)])
        )
        assert curve == [ProgressivePoint(0, 0.0)]

    def test_single_block(self):
        blocks = BlockCollection([Block("a", (0, 1, 2))], num_entities=3)
        truth = DuplicateSet([(0, 1)])
        scheduler = ProgressiveMetaBlocking(blocks, block_filtering_ratio=None)
        curve = progressive_recall_curve(
            scheduler, OracleMatcher(truth), truth, checkpoints=3
        )
        assert curve[-1].recall == 1.0
