"""Unit tests for Graph-free Meta-blocking."""

from repro.blockprocessing.comparison_propagation import ComparisonPropagation
from repro.core.block_filtering import BlockFiltering
from repro.core.graph_free import (
    EFFECTIVENESS_RATIO,
    EFFICIENCY_RATIO,
    GraphFreeMetaBlocking,
)
from repro.evaluation import evaluate


class TestGraphFreeMetaBlocking:
    def test_factory_ratios(self):
        assert GraphFreeMetaBlocking.for_efficiency().ratio == EFFICIENCY_RATIO
        assert (
            GraphFreeMetaBlocking.for_effectiveness().ratio == EFFECTIVENESS_RATIO
        )

    def test_equals_filter_then_propagate(self, small_dirty_blocks):
        method = GraphFreeMetaBlocking(0.4)
        combined = method.process(small_dirty_blocks)
        manual = ComparisonPropagation().process(
            BlockFiltering(0.4).process(small_dirty_blocks)
        )
        assert combined.distinct_comparisons() == manual.distinct_comparisons()

    def test_output_has_no_redundancy(self, small_dirty_blocks):
        result = GraphFreeMetaBlocking(0.5).process(small_dirty_blocks)
        assert result.cardinality == len(result.distinct_comparisons())

    def test_efficiency_prunes_more_than_effectiveness(self, small_dirty_blocks):
        efficiency = GraphFreeMetaBlocking.for_efficiency().process(
            small_dirty_blocks
        )
        effectiveness = GraphFreeMetaBlocking.for_effectiveness().process(
            small_dirty_blocks
        )
        assert efficiency.cardinality <= effectiveness.cardinality

    def test_effectiveness_recall_dominates(self, small_dirty, small_dirty_blocks):
        efficiency = GraphFreeMetaBlocking.for_efficiency().process(
            small_dirty_blocks
        )
        effectiveness = GraphFreeMetaBlocking.for_effectiveness().process(
            small_dirty_blocks
        )
        pc_efficiency = evaluate(efficiency, small_dirty.ground_truth).pc
        pc_effectiveness = evaluate(effectiveness, small_dirty.ground_truth).pc
        assert pc_effectiveness >= pc_efficiency

    def test_clean_clean(self, small_clean_clean, small_clean_blocks):
        result = GraphFreeMetaBlocking.for_effectiveness().process(
            small_clean_blocks
        )
        report = evaluate(result, small_clean_clean.ground_truth)
        assert report.pc > 0.5
        assert result.cardinality < small_clean_blocks.cardinality
