"""Unit tests for the comparison sinks and the lazy ComparisonView.

The load-bearing property is *bit-identity*: whatever route the retained
comparisons take — RAM batches, spilled ``.npy`` shards memory-mapped back,
or a bounded hand-off queue — the observed pair sequence must equal the
eager list element for element. Hypothesis drives that round-trip over
arbitrary pair sequences and shard sizes.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel.blocks import ComparisonCollection
from repro.datamodel.sinks import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    BoundedGeneratorSink,
    ComparisonView,
    InMemorySink,
    SinkClosed,
    SpillSink,
    ensure_view,
    load_spilled_view,
    stream_pruned,
)

pairs_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(501, 1000)), max_size=400
)


def fill(sink, pairs, chunk=7):
    for start in range(0, len(pairs), chunk):
        block = pairs[start : start + chunk]
        sink.append(
            np.array([p[0] for p in block], dtype=np.int64),
            np.array([p[1] for p in block], dtype=np.int64),
        )


# -- InMemorySink -------------------------------------------------------------


class TestInMemorySink:
    def test_round_trip_preserves_order(self):
        pairs = [(0, 5), (2, 3), (0, 5), (1, 4)]
        sink = InMemorySink()
        fill(sink, pairs, chunk=3)
        view = sink.finalize(6)
        assert isinstance(view, ComparisonView)
        assert list(view) == pairs
        assert view.pairs == pairs
        assert len(view) == 4
        assert view.cardinality == 4
        assert view.spill_manifest is None

    def test_view_is_a_comparison_collection(self):
        sink = InMemorySink()
        sink.append(np.array([0, 1]), np.array([2, 3]))
        view = sink.finalize(4)
        assert isinstance(view, ComparisonCollection)
        assert view.num_entities == 4

    def test_append_after_finalize_raises(self):
        sink = InMemorySink()
        sink.finalize(0)
        with pytest.raises(RuntimeError, match="finalized or aborted"):
            sink.append(np.array([0]), np.array([1]))

    def test_mismatched_arrays_rejected(self):
        sink = InMemorySink()
        with pytest.raises(ValueError, match="equal-length"):
            sink.append(np.array([0, 1]), np.array([2]))

    def test_append_pairs(self):
        sink = InMemorySink()
        sink.append_pairs([(1, 2), (3, 4)])
        sink.append_pairs([])
        assert list(sink.finalize(5)) == [(1, 2), (3, 4)]


# -- ComparisonView protocol --------------------------------------------------


class TestComparisonView:
    def make_view(self, pairs, spill_dir=None, shard_pairs=3):
        if spill_dir is None:
            sink = InMemorySink()
        else:
            sink = SpillSink(spill_dir=spill_dir, shard_pairs=shard_pairs)
        fill(sink, pairs, chunk=5)
        return sink.finalize(2000)

    @pytest.mark.parametrize("spilled", [False, True])
    def test_indexing_and_slicing(self, tmp_path, spilled):
        pairs = [(i, i + 600) for i in range(25)]
        view = self.make_view(pairs, tmp_path if spilled else None)
        assert view[0] == pairs[0]
        assert view[24] == pairs[24]
        assert view[-1] == pairs[-1]
        assert view[3:9] == pairs[3:9]
        assert view[::5] == pairs[::5]
        with pytest.raises(IndexError):
            view[25]

    @pytest.mark.parametrize("spilled", [False, True])
    def test_stream_rechunks(self, tmp_path, spilled):
        pairs = [(i, i + 600) for i in range(23)]
        view = self.make_view(pairs, tmp_path if spilled else None)
        batches = list(view.stream(batch_size=4))
        assert all(s.size <= 4 for s, _ in batches)
        streamed = [
            (int(l), int(r))
            for s, t in batches
            for l, r in zip(s.tolist(), t.tolist())
        ]
        assert streamed == pairs

    def test_stream_rejects_bad_batch_size(self):
        view = self.make_view([(0, 601)])
        with pytest.raises(ValueError, match="batch_size"):
            list(view.stream(batch_size=0))

    def test_set_helpers_stream(self, tmp_path):
        pairs = [(1, 700), (2, 800), (1, 700)]
        view = self.make_view(pairs, tmp_path, shard_pairs=2)
        assert view.distinct_comparisons() == {(1, 700), (2, 800)}
        assert view.entity_ids() == {1, 2, 700, 800}

    def test_empty_view(self):
        view = InMemorySink().finalize(10)
        assert len(view) == 0
        assert list(view) == []
        assert view.pairs == []
        assert view[0:3] == []


# -- SpillSink ----------------------------------------------------------------


class TestSpillSink:
    def test_round_trip_bit_identical(self, tmp_path):
        pairs = [(i % 50, 600 + (i * 7) % 50) for i in range(1000)]
        sink = SpillSink(spill_dir=tmp_path, shard_pairs=64)
        fill(sink, pairs, chunk=13)
        view = sink.finalize(700)
        assert list(view) == pairs
        assert view.pairs == pairs
        assert len(view) == 1000

    def test_shards_bounded_and_manifest_consistent(self, tmp_path):
        pairs = [(i, i + 600) for i in range(200)]
        sink = SpillSink(spill_dir=tmp_path, shard_pairs=32)
        fill(sink, pairs, chunk=50)
        view = sink.finalize(900)
        manifest = json.loads(view.spill_manifest.read_text(encoding="utf-8"))
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["total_pairs"] == 200
        assert manifest["num_entities"] == 900
        for entry in manifest["shards"]:
            assert entry["pairs"] <= 32
            shard = np.load(sink.directory / entry["file"])
            assert shard.shape == (2, entry["pairs"])
            assert shard.dtype == np.int64
        assert sum(e["pairs"] for e in manifest["shards"]) == 200

    def test_memory_budget_sets_shard_pairs(self, tmp_path):
        sink = SpillSink(spill_dir=tmp_path, memory_budget=3200)
        assert sink.shard_pairs == 3200 // 32
        sink.abort()

    def test_invalid_sizing_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="memory_budget"):
            SpillSink(spill_dir=tmp_path, memory_budget=0)
        with pytest.raises(ValueError, match="shard_pairs"):
            SpillSink(spill_dir=tmp_path, shard_pairs=0)

    def test_abort_removes_run_directory(self, spill_leak_check):
        sink = SpillSink(spill_dir=spill_leak_check, shard_pairs=4)
        fill(sink, [(i, i + 600) for i in range(20)])
        assert sink.directory.exists()
        sink.abort()
        assert not sink.directory.exists()
        sink.abort()  # idempotent

    def test_concurrent_sinks_do_not_collide(self, tmp_path):
        first = SpillSink(spill_dir=tmp_path)
        second = SpillSink(spill_dir=tmp_path)
        assert first.directory != second.directory
        first.abort()
        second.abort()

    def test_load_spilled_view_reopens(self, tmp_path):
        pairs = [(i, i + 600) for i in range(77)]
        sink = SpillSink(spill_dir=tmp_path, shard_pairs=16)
        fill(sink, pairs)
        view = sink.finalize(800)
        reopened = load_spilled_view(view.spill_manifest)
        assert list(reopened) == pairs
        assert reopened.num_entities == 800
        reopened.release()
        assert not sink.directory.exists()

    def test_load_rejects_unknown_version(self, tmp_path):
        run = tmp_path / "run-bogus"
        run.mkdir()
        (run / MANIFEST_NAME).write_text(
            json.dumps({"version": 999, "num_entities": 0, "shards": []})
        )
        with pytest.raises(ValueError, match="manifest version"):
            load_spilled_view(run / MANIFEST_NAME)

    def test_adopt_shard_preserves_submission_order(self, tmp_path):
        sink = SpillSink(spill_dir=tmp_path, shard_pairs=1000)
        sink.append(np.array([1]), np.array([601]))
        name, crc = SpillSink.write_shard(
            sink.directory, np.array([2, 3]), np.array([602, 603])
        )
        sink.adopt_shard(name, 2, checksum=crc)
        sink.append(np.array([4]), np.array([604]))
        view = sink.finalize(700)
        assert list(view) == [(1, 601), (2, 602), (3, 603), (4, 604)]

    def test_adopt_missing_shard_raises(self, tmp_path):
        sink = SpillSink(spill_dir=tmp_path)
        with pytest.raises(FileNotFoundError):
            sink.adopt_shard("no-such-shard.npy", 3)
        sink.abort()

    def test_ephemeral_directory_removed_with_view(self):
        sink = SpillSink(shard_pairs=4)
        directory = sink.directory
        fill(sink, [(i, i + 600) for i in range(10)])
        view = sink.finalize(700)
        assert list(view) == [(i, i + 600) for i in range(10)]
        view.release()
        assert not directory.exists()

    @settings(max_examples=40, deadline=None)
    @given(pairs=pairs_strategy, shard_pairs=st.integers(1, 64))
    def test_property_spill_round_trip(self, tmp_path_factory, pairs, shard_pairs):
        directory = tmp_path_factory.mktemp("prop-spill")
        eager = InMemorySink()
        spilled = SpillSink(spill_dir=directory, shard_pairs=shard_pairs)
        fill(eager, pairs, chunk=9)
        fill(spilled, pairs, chunk=9)
        eager_view = eager.finalize(1100)
        spilled_view = spilled.finalize(1100)
        assert list(spilled_view) == list(eager_view) == pairs
        assert spilled_view[: len(pairs)] == pairs
        spilled_view.release()


# -- BoundedGeneratorSink / stream_pruned -------------------------------------


class TestBoundedGeneratorSink:
    def test_pipelined_hand_off(self):
        pairs = [(i, i + 600) for i in range(50)]

        def produce(sink):
            fill(sink, pairs, chunk=8)
            return sink.finalize(700)

        streamed = [
            (int(l), int(r))
            for s, t in stream_pruned(produce, max_pending=2)
            for l, r in zip(s.tolist(), t.tolist())
        ]
        assert streamed == pairs

    def test_back_pressure_bounds_queue(self):
        sink = BoundedGeneratorSink(max_pending=1)
        started = threading.Event()

        def produce():
            started.set()
            fill(sink, [(i, i + 600) for i in range(30)], chunk=1)
            sink.finalize(700)

        thread = threading.Thread(target=produce, daemon=True)
        thread.start()
        started.wait(timeout=5)
        drained = sum(1 for _ in sink.batches())
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert drained == 30
        assert sink.pairs_seen == 30

    def test_early_close_stops_producer(self):
        failure: list[BaseException] = []

        def produce(sink):
            try:
                fill(sink, [(i, i + 600) for i in range(500)], chunk=1)
                sink.finalize(700)
            except SinkClosed as error:
                failure.append(error)
                raise

        stream = stream_pruned(produce, max_pending=1)
        next(stream)
        stream.close()
        assert failure and isinstance(failure[0], SinkClosed)

    def test_producer_exception_reraised(self):
        def produce(sink):
            sink.append(np.array([0]), np.array([600]))
            raise RuntimeError("boom mid-prune")

        with pytest.raises(RuntimeError, match="boom mid-prune"):
            list(stream_pruned(produce))

    def test_finalize_counts_only(self):
        sink = BoundedGeneratorSink()
        consumed = []
        thread = threading.Thread(
            target=lambda: consumed.extend(sink.batches()), daemon=True
        )
        thread.start()
        sink.append(np.array([1, 2]), np.array([601, 602]))
        view = sink.finalize(700)
        thread.join(timeout=5)
        assert len(view) == 2
        assert view.pairs == []  # pairs flowed to the consumer, not the view
        assert len(consumed) == 1

    def test_abort_with_full_queue_releases_consumer(self):
        # Regression: a producer that aborts against a *full* queue cannot
        # enqueue its end-of-stream marker; the consumer used to block on
        # an uncancellable get() forever.
        sink = BoundedGeneratorSink(max_pending=1)
        sink.append(np.array([1]), np.array([601]))  # queue now full
        sink.abort()  # put_nowait(_DONE) fails silently

        drained: list = []

        def consume():
            drained.extend(sink.batches())

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        thread.join(timeout=5)
        assert not thread.is_alive(), "consumer deadlocked after abort"
        assert len(drained) == 1  # the buffered batch still drains

    def test_invalid_max_pending(self):
        with pytest.raises(ValueError, match="max_pending"):
            BoundedGeneratorSink(max_pending=0)


# -- ensure_view bridge -------------------------------------------------------


class TestEnsureView:
    def test_wraps_eager_collection(self):
        eager = ComparisonCollection([(0, 3), (1, 2)], num_entities=4)
        view = ensure_view(eager)
        assert isinstance(view, ComparisonView)
        assert list(view) == [(0, 3), (1, 2)]
        assert view.num_entities == 4

    def test_passthrough_for_existing_view(self):
        sink = InMemorySink()
        sink.append(np.array([0]), np.array([1]))
        view = sink.finalize(2)
        assert ensure_view(view) is view

    def test_routes_into_supplied_sink(self, tmp_path):
        eager = ComparisonCollection([(0, 3), (1, 2)], num_entities=4)
        view = ensure_view(eager, SpillSink(spill_dir=tmp_path, shard_pairs=1))
        assert view.spill_manifest is not None
        assert list(view) == [(0, 3), (1, 2)]
