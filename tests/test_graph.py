"""Unit tests for blocking graph statistics and materialisation."""

import pytest

from repro.core.graph import MaterializedBlockingGraph, blocking_graph_stats
from repro.datamodel.blocks import Block, BlockCollection


class TestBlockingGraphStats:
    def test_paper_example(self, example_blocks):
        stats = blocking_graph_stats(example_blocks)
        assert stats.order == 6
        assert stats.size == 10

    def test_counts_only_placed_entities(self):
        blocks = BlockCollection([Block("a", (0, 1))], num_entities=10)
        stats = blocking_graph_stats(blocks)
        assert stats.order == 2
        assert stats.size == 1

    def test_redundant_blocks_do_not_inflate_size(self):
        blocks = BlockCollection(
            [Block("a", (0, 1)), Block("b", (0, 1))], num_entities=2
        )
        assert blocking_graph_stats(blocks).size == 1

    def test_bilateral(self, small_clean_blocks):
        stats = blocking_graph_stats(small_clean_blocks)
        distinct = len(small_clean_blocks.distinct_comparisons())
        assert stats.size == distinct

    def test_matches_distinct_comparisons(self, small_dirty_blocks):
        stats = blocking_graph_stats(small_dirty_blocks)
        assert stats.size == len(small_dirty_blocks.distinct_comparisons())

    def test_empty(self):
        stats = blocking_graph_stats(BlockCollection([], 0))
        assert (stats.order, stats.size) == (0, 0)


class TestMaterializedBlockingGraph:
    def test_edges_sorted_and_canonical(self, example_blocks):
        graph = MaterializedBlockingGraph(example_blocks, "JS")
        edges = graph.edges()
        assert edges == sorted(edges)
        assert all(left < right for left, right, _ in edges)

    def test_mean_weight_matches_pruning_threshold(self, example_blocks):
        from repro.core.edge_weighting import OptimizedEdgeWeighting
        from repro.core.pruning.base import mean_edge_weight

        graph = MaterializedBlockingGraph(example_blocks, "JS")
        weighting = OptimizedEdgeWeighting(example_blocks, "JS")
        assert graph.mean_weight() == pytest.approx(mean_edge_weight(weighting))

    def test_node_limit_guard(self, example_blocks):
        with pytest.raises(ValueError, match="refusing to materialise"):
            MaterializedBlockingGraph(example_blocks, "JS", max_nodes=2)

    def test_missing_edge_raises(self, example_blocks):
        graph = MaterializedBlockingGraph(example_blocks, "JS")
        with pytest.raises(KeyError):
            graph.weight(0, 1)  # p1 and p2 never co-occur

    def test_empty_graph_mean(self):
        graph = MaterializedBlockingGraph(BlockCollection([], 0), "JS")
        assert graph.mean_weight() == 0.0
        assert graph.order == 0
