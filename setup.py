"""Setup shim.

Package metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to a legacy editable install through setuptools).
"""

from setuptools import setup

setup()
